#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace stm {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  const std::string message =
      StrFormat("%s failed: %s (%s)", op, path.c_str(), std::strerror(err));
  if (err == ENOENT || err == ENOTDIR) return UnavailableError(message);
  return IoError(message);
}

// Heap-backed FileView: the portable fallback when mmap is unavailable or
// refused the file.
class HeapFileView : public FileView {
 public:
  explicit HeapFileView(std::string bytes) : bytes_(std::move(bytes)) {}
  const char* data() const override { return bytes_.data(); }
  size_t size() const override { return bytes_.size(); }
  bool mapped() const override { return false; }

 private:
  std::string bytes_;
};

class MmapFileView : public FileView {
 public:
  MmapFileView(void* addr, size_t size) : addr_(addr), size_(size) {}
  ~MmapFileView() override {
    if (addr_ != nullptr && size_ > 0) ::munmap(addr_, size_);
  }
  const char* data() const override {
    return static_cast<const char*>(addr_);
  }
  size_t size() const override { return size_; }
  bool mapped() const override { return true; }

 private:
  void* addr_;
  size_t size_;
};

// SequentialFile over an in-memory string: backs Env's portable
// OpenSequential default.
class StringSequentialFile : public SequentialFile {
 public:
  explicit StringSequentialFile(std::string bytes) : bytes_(std::move(bytes)) {}
  StatusOr<size_t> Read(char* buf, size_t cap) override {
    const size_t n = std::min(cap, bytes_.size() - pos_);
    std::memcpy(buf, bytes_.data() + pos_, n);
    pos_ += n;
    return n;
  }

 private:
  std::string bytes_;
  size_t pos_ = 0;
};

class FdSequentialFile : public SequentialFile {
 public:
  FdSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~FdSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }
  StatusOr<size_t> Read(char* buf, size_t cap) override {
    for (;;) {
      const ssize_t n = ::read(fd_, buf, cap);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("read", path_, errno);
      }
      return static_cast<size_t>(n);
    }
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string data;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      data.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return data;
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override {
    const std::string temp = StrFormat(
        "%s.tmp-%d-%llu", path.c_str(), static_cast<int>(::getpid()),
        static_cast<unsigned long long>(
            temp_counter_.fetch_add(1, std::memory_order_relaxed)));
    const int fd = ::open(temp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open", temp, errno);
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        ::unlink(temp.c_str());
        return ErrnoStatus("write", temp, err);
      }
      written += static_cast<size_t>(n);
    }
    // Flush file contents before the rename so a crash cannot publish a
    // name pointing at unwritten data.
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(temp.c_str());
      return ErrnoStatus("fsync", temp, err);
    }
    if (::close(fd) != 0) {
      const int err = errno;
      ::unlink(temp.c_str());
      return ErrnoStatus("close", temp, err);
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
      const int err = errno;
      ::unlink(temp.c_str());
      return ErrnoStatus("rename", path, err);
    }
    return Status::Ok();
  }

  Status Delete(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::Ok();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  StatusOr<std::unique_ptr<FileView>> MapFile(const std::string& path)
      override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat", path, err);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return StatusOr<std::unique_ptr<FileView>>(
          std::make_unique<HeapFileView>(std::string()));
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
      // mmap can legitimately refuse (address-space pressure, weird
      // filesystems); the heap path is always available.
      return Env::MapFile(path);
    }
    // Shard consumers walk documents front to back; tell the kernel so
    // readahead is aggressive and cold pages are cheap to drop.
    (void)::madvise(addr, size, MADV_SEQUENTIAL);
    return StatusOr<std::unique_ptr<FileView>>(
        std::make_unique<MmapFileView>(addr, size));
  }

  StatusOr<std::unique_ptr<SequentialFile>> OpenSequential(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return StatusOr<std::unique_ptr<SequentialFile>>(
        std::make_unique<FdSequentialFile>(fd, path));
  }

 private:
  std::atomic<uint64_t> temp_counter_{0};
};

}  // namespace

StatusOr<std::unique_ptr<FileView>> Env::MapFile(const std::string& path) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return StatusOr<std::unique_ptr<FileView>>(
      std::make_unique<HeapFileView>(std::move(bytes).value()));
}

StatusOr<std::unique_ptr<SequentialFile>> Env::OpenSequential(
    const std::string& path) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return StatusOr<std::unique_ptr<SequentialFile>>(
      std::make_unique<StringSequentialFile>(std::move(bytes).value()));
}

Status Env::CreateDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", path, errno);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> Env::ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir", path, errno);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(dir);
    if (entry == nullptr) {
      const int err = errno;
      ::closedir(dir);
      if (err != 0) return ErrnoStatus("readdir", path, err);
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status WriteFileAtomicWithRetry(Env* env, const std::string& path,
                                std::string_view data,
                                const RetryOptions& retry) {
  Status status;
  int backoff_ms = retry.initial_backoff_ms;
  const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    status = env->WriteFileAtomic(path, data);
    // Only kUnavailable is worth retrying; kIoError is deterministic.
    if (status.ok() || status.code() != StatusCode::kUnavailable) break;
  }
  return status;
}

bool FaultInjectingEnv::MaybeInjectOpFault(const char* op,
                                           const std::string& path,
                                           Status* out) {
  const int index = op_count_++;
  if (fail_op_at_ >= 0 && index == fail_op_at_) {
    fail_op_at_ = -1;
    ++injected_failures_;
    *out = Status(fail_op_code_,
                  StrFormat("injected fault on %s: %s", op, path.c_str()));
    return true;
  }
  return false;
}

StatusOr<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("ReadFile", path, &fault)) return fault;
  return base_->ReadFile(path);
}

Status FaultInjectingEnv::WriteFileAtomic(const std::string& path,
                                          std::string_view data) {
  ++write_count_;
  Status fault;
  if (MaybeInjectOpFault("WriteFileAtomic", path, &fault)) return fault;
  if (fail_writes_remaining_ > 0) {
    --fail_writes_remaining_;
    ++injected_failures_;
    return Status(fail_write_code_,
                  StrFormat("injected write fault: %s", path.c_str()));
  }
  if (crash_write_armed_) {
    crash_write_armed_ = false;
    ++injected_failures_;
    // Simulate dying between the temp write and the rename: the partial
    // temp file exists, the destination is untouched.
    (void)base_->WriteFileAtomic(path + ".crashtmp",
                                 data.substr(0, data.size() / 2));
    return IoError(
        StrFormat("injected crash before rename: %s", path.c_str()));
  }
  if (short_write_armed_) {
    short_write_armed_ = false;
    ++injected_failures_;
    return base_->WriteFileAtomic(
        path, data.substr(0, std::min(short_write_keep_, data.size())));
  }
  if (truncate_armed_) {
    truncate_armed_ = false;
    ++injected_failures_;
    const size_t keep =
        data.size() >= truncate_drop_ ? data.size() - truncate_drop_ : 0;
    return base_->WriteFileAtomic(path, data.substr(0, keep));
  }
  return base_->WriteFileAtomic(path, data);
}

Status FaultInjectingEnv::Delete(const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("Delete", path, &fault)) return fault;
  return base_->Delete(path);
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  Status fault;
  if (MaybeInjectOpFault("Rename", from, &fault)) return fault;
  return base_->Rename(from, to);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

namespace {

// Serves bytes from an underlying stream until a byte budget runs out,
// then fails every further Read — an I/O error mid-file.
class FailingSequentialFile : public SequentialFile {
 public:
  FailingSequentialFile(std::unique_ptr<SequentialFile> base, size_t budget,
                        std::string path)
      : base_(std::move(base)), budget_(budget), path_(std::move(path)) {}

  StatusOr<size_t> Read(char* buf, size_t cap) override {
    if (budget_ == 0) {
      return IoError(
          StrFormat("injected mid-stream read fault: %s", path_.c_str()));
    }
    StatusOr<size_t> n = base_->Read(buf, std::min(cap, budget_));
    if (n.ok()) budget_ -= n.value();
    return n;
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  size_t budget_;
  std::string path_;
};

}  // namespace

StatusOr<std::unique_ptr<FileView>> FaultInjectingEnv::MapFile(
    const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("MapFile", path, &fault)) return fault;
  if (fail_mmap_remaining_ > 0) {
    --fail_mmap_remaining_;
    ++injected_failures_;
    // The fallback the real env would take when mmap refuses: read the
    // bytes (through this env, so op accounting still applies).
    return Env::MapFile(path);
  }
  return base_->MapFile(path);
}

StatusOr<std::unique_ptr<SequentialFile>> FaultInjectingEnv::OpenSequential(
    const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("OpenSequential", path, &fault)) return fault;
  StatusOr<std::unique_ptr<SequentialFile>> file =
      base_->OpenSequential(path);
  if (!file.ok()) return file;
  if (sequential_fail_armed_) {
    sequential_fail_armed_ = false;
    ++injected_failures_;
    return StatusOr<std::unique_ptr<SequentialFile>>(
        std::make_unique<FailingSequentialFile>(std::move(file).value(),
                                                sequential_fail_after_, path));
  }
  return file;
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("CreateDir", path, &fault)) return fault;
  return base_->CreateDir(path);
}

StatusOr<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("ListDir", path, &fault)) return fault;
  return base_->ListDir(path);
}

}  // namespace stm
