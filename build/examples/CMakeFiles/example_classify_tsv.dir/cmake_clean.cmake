file(REMOVE_RECURSE
  "CMakeFiles/example_classify_tsv.dir/classify_tsv.cc.o"
  "CMakeFiles/example_classify_tsv.dir/classify_tsv.cc.o.d"
  "example_classify_tsv"
  "example_classify_tsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_classify_tsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
