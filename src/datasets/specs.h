#ifndef STM_DATASETS_SPECS_H_
#define STM_DATASETS_SPECS_H_

#include <cstdint>

#include "datasets/synthetic.h"

namespace stm::datasets {

// Canned specifications mirroring the structure (class count, hierarchy,
// imbalance, ambiguity, metadata) of the corpora used across the
// tutorial's experiments, scaled to run on one CPU core. Every function is
// deterministic in `seed`.

// AG's News: 4 balanced news topics.                      (E1, E4, E6, E7)
SyntheticSpec AgNewsSpec(uint64_t seed);

// The New York Times: 5 coarse / 25 fine, imbalanced.     (E1, E2, E8)
SyntheticSpec NytSpec(uint64_t seed);

// 20 Newsgroups: 6 coarse / 20 fine, with polysemy.       (E2, E6, E7)
SyntheticSpec TwentyNewsSpec(uint64_t seed);

// NYT-Topic (9 topics) and NYT-Location (10 locations), imbalanced. (E6)
SyntheticSpec NytTopicSpec(uint64_t seed);
SyntheticSpec NytLocationSpec(uint64_t seed);

// Yelp Review sentiment: 2 classes, heavy polysemy.       (E1, E6, E7)
SyntheticSpec YelpSpec(uint64_t seed);

// IMDB movie-review sentiment: 2 classes.                 (E4, E7)
SyntheticSpec ImdbSpec(uint64_t seed);

// DBpedia ontology: 14 balanced Wikipedia classes.        (E4, E6)
SyntheticSpec DbpediaSpec(uint64_t seed);

// Amazon product reviews (flat, 10 classes).              (E4)
SyntheticSpec AmazonFlatSpec(uint64_t seed);

// arXiv: 3 areas x 3 subareas hierarchy.                  (E8)
SyntheticSpec ArxivSpec(uint64_t seed);

// Yelp hierarchy for WeSHClass (2 coarse x 3 fine).       (E8)
SyntheticSpec YelpHierSpec(uint64_t seed);

// Amazon-531-like product taxonomy, multi-label DAG paths, with aux
// topics for relevance-model pre-training.                (E9)
SyntheticSpec AmazonTaxoSpec(uint64_t seed);

// DBpedia-298-like taxonomy, multi-label.                 (E9)
SyntheticSpec DbpediaTaxoSpec(uint64_t seed);

// GitHub-Bio / GitHub-AI / GitHub-Sec with user+tag metadata. (E10)
SyntheticSpec GithubBioSpec(uint64_t seed);
SyntheticSpec GithubAiSpec(uint64_t seed);
SyntheticSpec GithubSecSpec(uint64_t seed);

// Amazon reviews with user+product metadata.              (E10)
SyntheticSpec AmazonMetaSpec(uint64_t seed);

// Tweets with user+hashtag metadata.                      (E10)
SyntheticSpec TwitterSpec(uint64_t seed);

// MAG-CS / PubMed: multi-label, venue+reference metadata, label
// descriptions, aux topics.                               (E11)
SyntheticSpec MagCsSpec(uint64_t seed);
SyntheticSpec PubMedSpec(uint64_t seed);

// Relabels a hierarchical dataset's documents by their path node at
// `depth` (0 = coarsest), producing a flat single-label view. The returned
// corpus shares the vocabulary; label ids are renumbered densely and
// `keywords` (per new label) are taken from the node names + the original
// supervision of descendant leaves.
struct FlatView {
  text::Corpus corpus;
  text::WeakSupervision supervision;
  std::vector<int> node_of_label;  // new label id -> tree node
};
FlatView FlattenToDepth(const SyntheticDataset& data, int depth);

}  // namespace stm::datasets

#endif  // STM_DATASETS_SPECS_H_
