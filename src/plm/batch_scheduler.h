#ifndef STM_PLM_BATCH_SCHEDULER_H_
#define STM_PLM_BATCH_SCHEDULER_H_

#include <cstddef>
#include <vector>

namespace stm::plm {

// Length-bucketed batch planning for the frozen encoder path.
//
// Attention cost is quadratic in the padded length, so padding a batch of
// mostly-short documents to the longest one makes every short document
// pay the long document's bill. PlanBuckets sorts documents by length and
// groups them into buckets whose padded length is the longest member, with
// the fraction of pad tokens per bucket bounded by `max_waste`. Results
// are scattered back to input order by the callers (MiniLm::EncodeBatch /
// QuantizedMiniLm::EncodeBatch), so bucketing is invisible to them except
// for speed: every output is bit-identical to the per-document call (the
// kernels accumulate in a fixed order over exactly the same extents, and
// masked/pad positions never contribute to live rows).

enum class BatchMode {
  kPerDoc,    // one forward pass per document (the pre-bucketing behavior)
  kPadded,    // every document padded to the longest in the batch
  kBucketed,  // length-sorted buckets with bounded padding waste
};

struct BatchOptions {
  BatchMode mode = BatchMode::kBucketed;
  // Upper bound on the fraction of pad tokens a bucket may carry
  // (pad / (count * seq)); a document longer than every open bucket
  // always starts its own, so the bound can never strand a document.
  float max_waste = 0.25f;
  // Upper bound on count * seq tokens materialized by one bucket forward,
  // keeping activation memory flat no matter how large the batch is.
  size_t max_bucket_tokens = 4096;
};

// Process-wide options, defaulted from the environment on first use:
//   STM_ENCODE_BATCH         perdoc | padded | bucketed   (default bucketed)
//   STM_ENCODE_BUCKET_WASTE  max pad fraction in [0, 1]   (default 0.25)
//   STM_ENCODE_BUCKET_TOKENS max tokens per bucket        (default 4096)
// SetBatchOptions overrides them programmatically (benches, tests).
BatchOptions GetBatchOptions();
void SetBatchOptions(const BatchOptions& options);

struct EncodeBucket {
  size_t seq = 0;            // padded length every member runs at
  std::vector<size_t> docs;  // indices into the planned batch
};

struct BatchPlan {
  std::vector<EncodeBucket> buckets;
  size_t real_tokens = 0;    // sum of document lengths
  size_t padded_tokens = 0;  // sum over buckets of seq * member count
};

// Plans buckets over per-document lengths (each >= 1, already truncated).
// Every index in [0, lengths.size()) appears in exactly one bucket.
// Deterministic: the plan depends only on `lengths` and `options`, never
// on thread count or timing.
BatchPlan PlanBuckets(const std::vector<size_t>& lengths,
                      const BatchOptions& options);

}  // namespace stm::plm

#endif  // STM_PLM_BATCH_SCHEDULER_H_
