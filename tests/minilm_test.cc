#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datasets/synthetic.h"
#include "la/matrix.h"
#include "plm/minilm.h"
#include "text/vocabulary.h"

namespace stm::plm {
namespace {

// Small two-topic world shared by the tests in this file.
class MiniLmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datasets::SyntheticSpec spec;
    spec.dataset_name = "minilm-test";
    spec.seed = 42;
    spec.num_docs = 60;
    spec.pretrain_docs = 500;
    spec.background_vocab = 120;
    spec.class_vocab = 12;
    spec.doc_len_min = 15;
    spec.doc_len_max = 30;
    spec.topical_fraction = 0.6;
    spec.classes = {
        {"soccer", {"goal", "match"}, 1.0, -1},
        {"court", {"judge", "law"}, 1.0, -1},
    };
    data_ = new datasets::SyntheticDataset(datasets::Generate(spec));

    MiniLmConfig config;
    config.vocab_size = data_->corpus.vocab().size();
    config.dim = 32;
    config.layers = 1;
    config.heads = 2;
    config.ffn_dim = 64;
    config.max_seq = 32;
    model_ = new MiniLm(config);
    PretrainConfig pretrain;
    pretrain.steps = 400;
    pretrain.batch = 6;
    pretrain.train_rtd = true;
    final_loss_ = model_->Pretrain(data_->pretrain_docs, pretrain);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static datasets::SyntheticDataset* data_;
  static MiniLm* model_;
  static double final_loss_;
};

datasets::SyntheticDataset* MiniLmTest::data_ = nullptr;
MiniLm* MiniLmTest::model_ = nullptr;
double MiniLmTest::final_loss_ = 0.0;

TEST_F(MiniLmTest, PretrainingReducesLoss) {
  // Untrained cross entropy is ~log(vocab) ≈ 5.3; frequency-aware masking
  // concentrates targets on rare tokens, so the bar sits just below that.
  EXPECT_LT(final_loss_, 5.1);
}

TEST_F(MiniLmTest, EncodeShape) {
  la::Matrix hidden = model_->Encode({6, 7, 8});
  EXPECT_EQ(hidden.rows(), 3u);
  EXPECT_EQ(hidden.cols(), 32u);
}

TEST_F(MiniLmTest, PooledRepsSeparateTopics) {
  // Mean cosine similarity of same-topic doc pairs should exceed
  // cross-topic pairs.
  std::vector<std::vector<float>> pooled;
  std::vector<int> labels;
  for (size_t d = 0; d < 30; ++d) {
    const auto& doc = data_->corpus.docs()[d];
    pooled.push_back(model_->Pool(doc.tokens));
    labels.push_back(doc.labels[0]);
  }
  double same = 0.0;
  double cross = 0.0;
  size_t same_n = 0;
  size_t cross_n = 0;
  for (size_t i = 0; i < pooled.size(); ++i) {
    for (size_t j = i + 1; j < pooled.size(); ++j) {
      const float sim = la::Cosine(pooled[i], pooled[j]);
      if (labels[i] == labels[j]) {
        same += sim;
        ++same_n;
      } else {
        cross += sim;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST_F(MiniLmTest, MaskedPredictionPrefersTopicalWords) {
  // Build a soccer-topic context and mask one topical slot: the top-k
  // predictions should contain more soccer-theme tokens than court-theme.
  const auto& vocab = data_->corpus.vocab();
  std::vector<int32_t> context;
  for (const char* w : {"soccer", "goal", "match", "soccer_t0", "soccer_t1",
                        "soccer_t2", "goal", "soccer"}) {
    context.push_back(vocab.IdOf(w));
  }
  auto top = model_->PredictTopK(context, 3, 10);
  std::set<std::string> soccer_theme = {"soccer", "goal", "match"};
  for (int i = 0; i < 12; ++i) {
    soccer_theme.insert("soccer_t" + std::to_string(i));
  }
  std::set<std::string> court_theme = {"court", "judge", "law"};
  for (int i = 0; i < 12; ++i) {
    court_theme.insert("court_t" + std::to_string(i));
  }
  int soccer_hits = 0;
  int court_hits = 0;
  for (int32_t id : top) {
    const std::string& token = vocab.TokenOf(id);
    soccer_hits += soccer_theme.count(token);
    court_hits += court_theme.count(token);
  }
  EXPECT_GT(soccer_hits, court_hits);
}

TEST_F(MiniLmTest, CandidateLogProbsAreLogProbs) {
  std::vector<int32_t> ids = {6, 7, 8, 9};
  auto lp = model_->CandidateLogProbs(ids, 1, {6, 7});
  ASSERT_EQ(lp.size(), 2u);
  EXPECT_LT(lp[0], 0.0f);
  EXPECT_LT(lp[1], 0.0f);
}

TEST_F(MiniLmTest, ReplacedProbsInUnitInterval) {
  auto probs = model_->ReplacedProbs(data_->corpus.docs()[0].tokens);
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST_F(MiniLmTest, RtdFlagsCorruptedTokensOnAverage) {
  // Statistical check: average replaced-probability at corrupted slots
  // (cross-topic substitution) should exceed the average at the same slots
  // when left intact.
  const auto& vocab = data_->corpus.vocab();
  double p_intact = 0.0;
  double p_corrupt = 0.0;
  int n = 0;
  for (size_t d = 0; d < 20; ++d) {
    const auto& doc = data_->corpus.docs()[d];
    if (doc.labels[0] != 0 || doc.tokens.size() < 8) continue;
    std::vector<int32_t> corrupted(doc.tokens.begin(),
                                   doc.tokens.begin() + 8);
    const size_t slot = 4;
    const auto before = model_->ReplacedProbs(corrupted);
    corrupted[slot] = vocab.IdOf("court_t" + std::to_string(n % 8));
    const auto after = model_->ReplacedProbs(corrupted);
    p_intact += before[slot];
    p_corrupt += after[slot];
    ++n;
  }
  ASSERT_GT(n, 3);
  EXPECT_GT(p_corrupt / n, p_intact / n);
}

TEST_F(MiniLmTest, PredictTopKAtReturnsPerPosition) {
  const auto& doc = data_->corpus.docs()[0];
  std::vector<size_t> positions = {0, 2, 4};
  const auto tops = model_->PredictTopKAt(doc.tokens, positions, 7);
  ASSERT_EQ(tops.size(), 3u);
  for (const auto& top : tops) {
    ASSERT_EQ(top.size(), 7u);
    std::set<int32_t> unique(top.begin(), top.end());
    EXPECT_EQ(unique.size(), top.size());
    for (int32_t id : top) {
      EXPECT_GE(id, text::kNumSpecialTokens);  // specials excluded
    }
  }
}

TEST_F(MiniLmTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/minilm_roundtrip.bin";
  ASSERT_TRUE(model_->Save(path));
  auto loaded = MiniLm::Load(path);
  ASSERT_NE(loaded, nullptr);
  const std::vector<int32_t> ids = {6, 7, 8, 9, 10};
  const auto a = model_->Pool(ids);
  const auto b = loaded->Pool(ids);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST_F(MiniLmTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/minilm_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a model", f);
  fclose(f);
  EXPECT_EQ(MiniLm::Load(path), nullptr);
}

TEST_F(MiniLmTest, TruncatesLongInput) {
  std::vector<int32_t> longdoc(500, 6);
  la::Matrix hidden = model_->Encode(longdoc);
  EXPECT_EQ(hidden.rows(), 32u);  // max_seq
}

TEST(MiniLmCacheTest, LoadOrPretrainUsesCache) {
  datasets::SyntheticSpec spec;
  spec.seed = 9;
  spec.num_docs = 10;
  spec.pretrain_docs = 80;
  spec.background_vocab = 60;
  spec.class_vocab = 6;
  spec.classes = {{"alpha", {}, 1.0, -1}, {"beta", {}, 1.0, -1}};
  auto data = datasets::Generate(spec);
  MiniLmConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.dim = 16;
  config.layers = 1;
  config.heads = 2;
  config.ffn_dim = 32;
  config.max_seq = 16;
  PretrainConfig pretrain;
  pretrain.steps = 20;
  pretrain.batch = 4;
  const std::string dir = testing::TempDir();
  auto first = MiniLm::LoadOrPretrain(dir, data.fingerprint, config,
                                      pretrain, data.pretrain_docs);
  ASSERT_NE(first, nullptr);
  auto second = MiniLm::LoadOrPretrain(dir, data.fingerprint, config,
                                       pretrain, data.pretrain_docs);
  ASSERT_NE(second, nullptr);
  const std::vector<int32_t> ids = {6, 7, 8};
  const auto a = first->Pool(ids);
  const auto b = second->Pool(ids);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace stm::plm
