// Batch-encoding bench: padded vs length-bucketed batching vs the
// embedding cache, over a mixed-length corpus shaped like the tutorial
// datasets (mostly short documents with a long tail). One row per
// execution mode in fp32 and int8 (STM_QUANT path); the "cached" row
// times a warm PoolBatch pass against an in-memory EncodeCache. With
// STM_BENCH_JSON=<path>, every timing plus the derived speedup ratios is
// recorded for scripted before/after comparison (see bench/run_benches.sh,
// which commits the single-thread numbers as BENCH_encode.json).
//
//   ./bench_encode            full sweep (respects STM_NUM_THREADS)
//   ./bench_encode --smoke    fast correctness pass used by ctest; exits
//                             non-zero if bucketed/padded/cached outputs
//                             are not BIT-identical to per-document calls
//                             in both fp32 and int8

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "la/matrix.h"
#include "plm/batch_scheduler.h"
#include "plm/encode_cache.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

// Tutorial-shaped length mix: 70% short (4-12 tokens), 25% medium
// (13-28), 5% near the max_seq cap — the regime where padding to the
// global max wastes most of the batch.
std::vector<std::vector<int32_t>> SkewedCorpus(size_t count, size_t vocab,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs(count);
  for (auto& doc : docs) {
    size_t len;
    const double r = rng.Uniform();
    if (r < 0.70) {
      len = 4 + rng.UniformInt(9);
    } else if (r < 0.95) {
      len = 13 + rng.UniformInt(16);
    } else {
      len = 36 + rng.UniformInt(13);
    }
    doc.resize(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
  }
  return docs;
}

std::unique_ptr<plm::MiniLm> BenchModel(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 48;
  config.seed = 17;
  // Random init: batching/caching speed and bit-identity are independent
  // of training, and skipping pre-training keeps the bench self-contained.
  return std::make_unique<plm::MiniLm>(config);
}

void SetMode(plm::BatchMode mode) {
  plm::BatchOptions options;
  options.mode = mode;
  plm::SetBatchOptions(options);
}

double TimePoolBatch(plm::MiniLm& model,
                     const std::vector<std::vector<int32_t>>& docs,
                     const std::string& json_method) {
  WallTimer timer;
  {
    bench::MethodTimer method("encode", json_method);
    const la::Matrix pooled = model.PoolBatch(docs);
    // Keep the result alive so the pass cannot be optimized away.
    if (pooled.rows() != docs.size()) std::abort();
  }
  return timer.Seconds();
}

void RecordRatio(const std::string& name, double ratio) {
  bench::BenchJsonWriter::Instance().Record("encode", name, ratio);
}

int RunSweep() {
  const size_t kVocab = 1000;
  const auto docs = SkewedCorpus(1400, kVocab, 99);
  auto model = BenchModel(kVocab);

  bench::Table table("Batch encoding: padded vs bucketed vs cached "
                     "(PoolBatch seconds, lower is better)",
                     {"perdoc_s", "padded_s", "bucket_s", "speedup",
                      "cached_s", "cache_x"});

  for (const bool quant : {false, true}) {
    const std::string prefix = quant ? "int8" : "fp32";
    plm::SetQuantInference(quant ? 1 : 0);
    bench::Progress(prefix + ": warmup");
    SetMode(plm::BatchMode::kBucketed);
    (void)model->PoolBatch({docs[0], docs[1]});  // freeze/pack once

    SetMode(plm::BatchMode::kPerDoc);
    const double perdoc = TimePoolBatch(*model, docs, prefix + "_perdoc");
    bench::Progress(prefix + ": perdoc " + std::to_string(perdoc) + "s");
    SetMode(plm::BatchMode::kPadded);
    const double padded = TimePoolBatch(*model, docs, prefix + "_padded");
    bench::Progress(prefix + ": padded " + std::to_string(padded) + "s");
    SetMode(plm::BatchMode::kBucketed);
    const double bucketed =
        TimePoolBatch(*model, docs, prefix + "_bucketed");
    bench::Progress(prefix + ": bucketed " + std::to_string(bucketed) +
                    "s");

    // Warm-cache pass: fill once, then time a pure-hit run.
    plm::EncodeCache::Config cache_config;
    cache_config.max_bytes = size_t{512} * 1024 * 1024;
    model->SetEncodeCache(std::make_shared<plm::EncodeCache>(cache_config));
    (void)model->PoolBatch(docs);
    const double cached = TimePoolBatch(*model, docs, prefix + "_cached");
    bench::Progress(prefix + ": cached " + std::to_string(cached) + "s");
    model->SetEncodeCache(nullptr);

    const double speedup = bucketed > 0 ? padded / bucketed : 0.0;
    const double cache_x = cached > 0 ? bucketed / cached : 0.0;
    RecordRatio(prefix + "_bucketed_speedup", speedup);
    RecordRatio(prefix + "_cache_speedup", cache_x);
    table.AddRow(prefix, {perdoc, padded, bucketed, speedup, cached,
                          cache_x});
  }
  plm::SetQuantInference(-1);
  SetMode(plm::BatchMode::kBucketed);
  table.Print();
  return 0;
}

// Fast ctest pass: every batch mode and the cache must reproduce the
// per-document outputs bit-for-bit in both precisions.
int RunSmoke() {
  const size_t kVocab = 200;
  const auto docs = SkewedCorpus(48, kVocab, 7);
  auto model = BenchModel(kVocab);
  int failures = 0;

  for (const bool quant : {false, true}) {
    plm::SetQuantInference(quant ? 1 : 0);
    SetMode(plm::BatchMode::kPerDoc);
    const la::Matrix want = model->PoolBatch(docs);
    for (const plm::BatchMode mode :
         {plm::BatchMode::kPadded, plm::BatchMode::kBucketed}) {
      SetMode(mode);
      const la::Matrix got = model->PoolBatch(docs);
      if (std::memcmp(want.data(), got.data(),
                      want.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FAIL: quant=%d mode=%d differs from perdoc\n",
                     quant ? 1 : 0, static_cast<int>(mode));
        ++failures;
      }
    }
    SetMode(plm::BatchMode::kBucketed);
    model->SetEncodeCache(std::make_shared<plm::EncodeCache>(
        plm::EncodeCache::Config{}));
    (void)model->PoolBatch(docs);  // fill
    const la::Matrix cached = model->PoolBatch(docs);  // pure hits
    if (std::memcmp(want.data(), cached.data(),
                    want.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "FAIL: quant=%d cached differs from perdoc\n",
                   quant ? 1 : 0);
      ++failures;
    }
    model->SetEncodeCache(nullptr);
  }
  plm::SetQuantInference(-1);
  if (failures == 0) std::printf("bench_encode --smoke: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return stm::RunSmoke();
  }
  return stm::RunSweep();
}
