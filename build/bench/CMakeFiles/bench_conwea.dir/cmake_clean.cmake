file(REMOVE_RECURSE
  "CMakeFiles/bench_conwea.dir/bench_conwea.cc.o"
  "CMakeFiles/bench_conwea.dir/bench_conwea.cc.o.d"
  "bench_conwea"
  "bench_conwea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conwea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
