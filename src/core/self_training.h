#ifndef STM_CORE_SELF_TRAINING_H_
#define STM_CORE_SELF_TRAINING_H_

#include <cstdint>
#include <vector>

#include "nn/text_classifier.h"

namespace stm::core {

// The self-training / bootstrapping loop shared by WeSTClass, WeSHClass,
// LOTClass and PromptClass: repeatedly predict the unlabeled corpus,
// sharpen the predicted distribution into targets
//   q_ic = p_ic^2 / f_c   (f_c = soft class frequency), row-normalized,
// train against q, and stop when the fraction of changed hard labels
// falls below `convergence_delta`.
struct SelfTrainConfig {
  int max_iters = 5;
  int epochs_per_iter = 2;
  double convergence_delta = 0.01;
};

// Runs self-training in place; returns the final hard predictions.
std::vector<int> SelfTrain(nn::TextClassifier& classifier,
                           const std::vector<std::vector<int32_t>>& docs,
                           const SelfTrainConfig& config);

// The target-sharpening rule, exposed for tests: given probs [n, C],
// returns flattened sharpened targets [n * C].
std::vector<float> SharpenTargets(const la::Matrix& probs);

}  // namespace stm::core

#endif  // STM_CORE_SELF_TRAINING_H_
