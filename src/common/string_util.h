#ifndef STM_COMMON_STRING_UTIL_H_
#define STM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace stm {

// Splits `text` on `sep`, dropping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

// Splits on any ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Joins `pieces` with `sep` between elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// ASCII lower-casing (the library's corpora are ASCII by construction).
std::string ToLower(std::string_view text);

// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

// True if `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace stm

#endif  // STM_COMMON_STRING_UTIL_H_
