
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_graph_test.cc" "tests/CMakeFiles/stm_tests.dir/cluster_graph_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/cluster_graph_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/stm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/components_test.cc" "tests/CMakeFiles/stm_tests.dir/components_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/components_test.cc.o.d"
  "/root/repo/tests/corpus_io_test.cc" "tests/CMakeFiles/stm_tests.dir/corpus_io_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/corpus_io_test.cc.o.d"
  "/root/repo/tests/datasets_test.cc" "tests/CMakeFiles/stm_tests.dir/datasets_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/datasets_test.cc.o.d"
  "/root/repo/tests/embedding_test.cc" "tests/CMakeFiles/stm_tests.dir/embedding_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/embedding_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/stm_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/stm_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/stm_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/la_test.cc" "tests/CMakeFiles/stm_tests.dir/la_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/la_test.cc.o.d"
  "/root/repo/tests/methods2_test.cc" "tests/CMakeFiles/stm_tests.dir/methods2_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/methods2_test.cc.o.d"
  "/root/repo/tests/minilm_test.cc" "tests/CMakeFiles/stm_tests.dir/minilm_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/minilm_test.cc.o.d"
  "/root/repo/tests/nn_ops_extra_test.cc" "tests/CMakeFiles/stm_tests.dir/nn_ops_extra_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/nn_ops_extra_test.cc.o.d"
  "/root/repo/tests/nn_ops_test.cc" "tests/CMakeFiles/stm_tests.dir/nn_ops_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/nn_ops_test.cc.o.d"
  "/root/repo/tests/plm_methods_test.cc" "tests/CMakeFiles/stm_tests.dir/plm_methods_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/plm_methods_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/stm_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/pseudo_docs_test.cc" "tests/CMakeFiles/stm_tests.dir/pseudo_docs_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/pseudo_docs_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/stm_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/text_classifier_test.cc" "tests/CMakeFiles/stm_tests.dir/text_classifier_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/text_classifier_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/stm_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/text_test.cc.o.d"
  "/root/repo/tests/westclass_test.cc" "tests/CMakeFiles/stm_tests.dir/westclass_test.cc.o" "gcc" "tests/CMakeFiles/stm_tests.dir/westclass_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
