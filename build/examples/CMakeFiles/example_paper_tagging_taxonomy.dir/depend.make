# Empty dependencies file for example_paper_tagging_taxonomy.
# This may be replaced when dependencies are built.
