#ifndef STM_LA_WORKSPACE_H_
#define STM_LA_WORKSPACE_H_

#include <cstddef>
#include <vector>

namespace stm::la {

// Thread-local arena of reusable float buffers.
//
// The GEMM kernels borrow packing panels from it on every call, and the
// nn autograd recycles Node value/grad buffers through it (see
// nn/tensor.cc), so a MiniLm encode re-uses the same allocations across
// layers and across consecutive Encode/EncodeBatch calls instead of
// hitting the allocator dozens of times per document.
//
// Lifetime rules (see DESIGN.md, "Kernel library"):
//  * every buffer is owned by exactly one thread's workspace at a time;
//    Acquire/Release never share buffers across threads, so the arena
//    needs no locks and is trivially race-free;
//  * a buffer Acquired on one thread may be Released on another (a graph
//    built by a pool worker can be destroyed by the caller) — it simply
//    joins the releasing thread's pool;
//  * Release after thread exit degrades to an ordinary free, never a
//    crash, so static-destruction order does not matter;
//  * the cache is bounded (entry count and total floats); eviction drops
//    the smallest buffers first.
//
// Buffer contents are unspecified on Acquire; use AcquireZeroedVec when
// zeros are required. Pooling never changes results: only the allocation
// is recycled, every element is written (or zeroed) before use.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // The calling thread's workspace, or nullptr when the thread is
  // shutting down and the workspace has already been destroyed.
  static Workspace* ThreadLocalOrNull();

  // Buffer of size n (capacity may be larger); contents unspecified.
  std::vector<float> Acquire(size_t n);

  // Returns a buffer to the pool.
  void Release(std::vector<float>&& buf);

  // Drops every cached buffer (testing hook).
  void Clear();

  // Raises the calling thread's float-cache cap so a large working set —
  // e.g. one length bucket's encoder graph (see plm/batch_scheduler.h) —
  // stays pooled across consecutive forwards instead of being evicted
  // and reallocated each time. Only ever grows the cap, and is clamped
  // to a hard ceiling so a hostile hint cannot pin unbounded memory.
  static void ReserveThreadFloats(size_t floats);

  size_t cached_buffers() const { return pool_.size(); }
  size_t cached_floats() const { return cached_floats_; }
  size_t max_floats() const { return max_floats_; }

 private:
  // Sorted by capacity, ascending; Acquire takes the best (smallest
  // sufficient) fit.
  std::vector<std::vector<float>> pool_;
  size_t cached_floats_ = 0;
  size_t max_floats_ = 0;  // 0 = default cap (set on first Release)
};

// Convenience wrappers over the calling thread's workspace; they fall
// back to plain allocation/free when the workspace is gone (thread exit).
std::vector<float> AcquireVec(size_t n);
std::vector<float> AcquireZeroedVec(size_t n);
void ReleaseVec(std::vector<float>&& buf);

}  // namespace stm::la

#endif  // STM_LA_WORKSPACE_H_
