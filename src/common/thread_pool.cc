#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env_parse.h"

namespace stm {

namespace {

thread_local bool tls_in_worker = false;

std::mutex& GlobalMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

// One parallel region: a dense index space [0, count) drained by the
// caller plus any workers that pick the region up. `task` points to the
// caller's stack frame; Run() blocks until done == count, so the pointer
// is never dereferenced after Run returns (next >= count by then, and
// DrainRegion checks next before touching task).
struct ThreadPool::Region {
  size_t count = 0;
  const std::function<void(size_t)>* task = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mutex;
  std::condition_variable finished;
  std::exception_ptr error;  // first exception observed; guarded by mutex
};

ThreadPool::ThreadPool(size_t threads) {
  const size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  auto& pool = GlobalSlot();
  if (!pool) pool = std::make_unique<ThreadPool>(ConfiguredThreads());
  return *pool;
}

void ThreadPool::Reset(size_t threads) {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  GlobalSlot().reset();
  GlobalSlot() = std::make_unique<ThreadPool>(std::max<size_t>(1, threads));
}

bool ThreadPool::InWorker() { return tls_in_worker; }

size_t ThreadPool::ConfiguredThreads() {
  // 0 (the fallback for unset or rejected values) means "use the
  // hardware concurrency"; the 4096 ceiling rejects thread counts that
  // could only be typos.
  const size_t parsed = ParseSizeEnv("STM_NUM_THREADS", 0, 0, 4096);
  if (parsed > 0) return parsed;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::Run(size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || InWorker()) {
    // Serial path; also the nested-submit rejection: a worker never
    // enqueues into the pool it is draining.
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  auto region = std::make_shared<Region>();
  region->count = count;
  region->task = &task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    regions_.push_back(region);
  }
  wake_.notify_all();
  DrainRegion(*region);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(region->mutex);
    region->finished.wait(
        lock, [&] { return region->done.load() == region->count; });
    if (region->error) std::rethrow_exception(region->error);
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || !regions_.empty(); });
      if (stop_) return;
      region = regions_.front();
      if (region->next.load() >= region->count) {
        // Exhausted region (all indices claimed); retire it.
        regions_.erase(regions_.begin());
        continue;
      }
    }
    DrainRegion(*region);
  }
}

void ThreadPool::DrainRegion(Region& region) {
  for (;;) {
    const size_t index = region.next.fetch_add(1);
    if (index >= region.count) return;
    try {
      (*region.task)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.mutex);
      if (!region.error) region.error = std::current_exception();
    }
    if (region.done.fetch_add(1) + 1 == region.count) {
      std::lock_guard<std::mutex> lock(region.mutex);
      region.finished.notify_all();
    }
  }
}

size_t ParallelChunkCount(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  const size_t g = std::max<size_t>(1, grain);
  return (end - begin + g - 1) / g;
}

void ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t chunks = ParallelChunkCount(begin, end, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(0, begin, end);
    return;
  }
  const size_t g = std::max<size_t>(1, grain);
  ThreadPool::Global().Run(chunks, [&](size_t c) {
    const size_t b = begin + c * g;
    fn(c, b, std::min(end, b + g));
  });
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&](size_t, size_t b, size_t e) { fn(b, e); });
}

}  // namespace stm
