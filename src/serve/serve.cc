#include "serve/serve.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/env_parse.h"
#include "plm/quantized_minilm.h"

namespace stm::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration MillisDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// Resolving a promise that a concurrent path already resolved throws
// future_error; every resolution site in this file goes through here so a
// race between (say) shutdown orphaning and a drain worker can never
// escape as an exception.
void SafeSet(std::promise<StatusOr<Prediction>>& promise,
             StatusOr<Prediction> value) {
  try {
    promise.set_value(std::move(value));
  } catch (const std::future_error&) {
  }
}

// Smoothing for the batch-wall-time EWMA (the deadline-aware close
// margin). Deliberately separate from ServeOptions::degrade_alpha: batch
// time converges in a handful of batches, pressure needs a tunable
// horizon.
constexpr double kBatchMsAlpha = 0.2;

}  // namespace

std::string_view DegradeTierName(DegradeTier tier) {
  switch (tier) {
    case DegradeTier::kFull:
      return "full";
    case DegradeTier::kInt8:
      return "int8";
    case DegradeTier::kCacheOnly:
      return "cache-only";
    case DegradeTier::kShed:
      return "shed";
  }
  return "unknown";
}

ServeOptions ServeOptionsFromEnv() {
  ServeOptions options;
  options.max_batch =
      ParseSizeEnv("STM_SERVE_MAX_BATCH", options.max_batch, 1, 4096);
  options.deadline_ms =
      ParseFloatEnv("STM_SERVE_DEADLINE_MS",
                    static_cast<float>(options.deadline_ms), 0.0f, 60000.0f);
  options.queue_depth = ParseSizeEnv("STM_SERVE_QUEUE_DEPTH",
                                     options.queue_depth, 1, size_t{1} << 20);
  options.workers = ParseSizeEnv("STM_SERVE_WORKERS", options.workers, 1, 256);
  options.request_deadline_ms = ParseFloatEnv(
      "STM_SERVE_REQUEST_DEADLINE_MS",
      static_cast<float>(options.request_deadline_ms), 0.0f, 600000.0f);
  options.degrade_auto =
      ParseEnumEnv("STM_SERVE_DEGRADE", {"off", "auto"},
                   options.degrade_auto ? 1 : 0) == 1;
  options.watchdog_ms =
      ParseFloatEnv("STM_SERVE_WATCHDOG_MS",
                    static_cast<float>(options.watchdog_ms), 0.0f, 600000.0f);
  return options;
}

Server::Server(plm::MiniLm* model, const ServeOptions& options)
    : model_(model), options_(options) {
  STM_CHECK(model_ != nullptr);
  STM_CHECK_GE(options_.max_batch, 1u);
  STM_CHECK_GE(options_.queue_depth, 1u);
  STM_CHECK_GE(options_.workers, 1u);
  STM_CHECK_GE(options_.deadline_ms, 0.0);
  STM_CHECK_GE(options_.request_deadline_ms, 0.0);
  STM_CHECK_GE(options_.watchdog_ms, 0.0);
  STM_CHECK_GE(options_.latency_reservoir, 1u);
  worker_states_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
  // Dedicated threads, NOT ThreadPool members: a pool worker calling
  // ThreadPool::Run executes the region inline (nested-submit rejection),
  // which would serialize every encoder GEMM a serve worker issues. As
  // plain threads the workers submit regions to the global pool like any
  // other caller.
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (options_.watchdog_ms > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

Server::~Server() { Shutdown(); }

Status Server::Register(const std::string& name,
                        std::shared_ptr<const Classifier> classifier) {
  STM_CHECK(classifier != nullptr);
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (serving_) {
    // The routing map is read without synchronization on the Submit hot
    // path once serving starts; mutating it now would race every
    // in-flight lookup. Reject loudly instead.
    std::fprintf(stderr,
                 "[stm] serve: Register('%s') after the first Submit is "
                 "rejected; register all models before serving starts\n",
                 name.c_str());
    return InvalidArgumentError("Register('" + name +
                                "') after serving started; register all "
                                "models before the first Submit");
  }
  classifiers_[name] = std::move(classifier);
  return Status::Ok();
}

std::future<StatusOr<Prediction>> Server::Submit(const std::string& model,
                                                 std::vector<int32_t> ids,
                                                 const SubmitOptions& submit) {
  std::promise<StatusOr<Prediction>> rejected;
  std::future<StatusOr<Prediction>> rejected_future = rejected.get_future();

  const Classifier* classifier = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    serving_ = true;  // latches the routing map read-only
    const auto it = classifiers_.find(model);
    if (it != classifiers_.end()) classifier = it->second.get();
  }
  if (classifier == nullptr) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.invalid;
    }
    rejected.set_value(InvalidArgumentError("unknown model: " + model));
    return rejected_future;
  }
  // Validated here so a hostile request is a Status, not an STM_CHECK
  // abort inside a drain worker's Truncate call.
  const size_t vocab = model_->config().vocab_size;
  for (const int32_t id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= vocab) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.invalid;
      }
      rejected.set_value(InvalidArgumentError(
          "token id " + std::to_string(id) + " outside vocabulary of " +
          std::to_string(vocab)));
      return rejected_future;
    }
  }

  // Shed tier: reject at admission, the cheapest possible point. Pressure
  // is still sampled — recovery is driven by traffic observing an
  // emptying queue, so a fully-shedding server can step back down.
  if (options_.degrade_auto && tier() == DegradeTier::kShed) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
    }
    double frac;
    {
      std::lock_guard<std::mutex> lock(mu_);
      frac = static_cast<double>(queue_.size()) /
             static_cast<double>(options_.queue_depth);
    }
    UpdatePressure(frac);
    rejected.set_value(
        UnavailableError("shedding under overload (degrade tier 'shed'); "
                         "retry later"));
    return rejected_future;
  }

  auto request = std::make_unique<Request>();
  request->ids = std::move(ids);
  request->classifier = classifier;
  request->enqueued = Clock::now();
  const double deadline_ms = submit.deadline_ms > 0.0
                                 ? submit.deadline_ms
                                 : options_.request_deadline_ms;
  request->deadline = deadline_ms > 0.0
                          ? request->enqueued + MillisDuration(deadline_ms)
                          : Clock::time_point::max();
  request->cancel = submit.cancel;
  std::future<StatusOr<Prediction>> future = request->promise.get_future();

  bool admitted = false;
  double frac = -1.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      request->promise.set_value(UnavailableError("server is shutting down"));
      return future;
    }
    if (queue_.size() >= options_.queue_depth) {
      // Admission control: shed instead of queueing without bound. A full
      // queue is the strongest pressure signal there is.
      frac = 1.0;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.shed;
      }
      request->promise.set_value(UnavailableError(
          "queue full (" + std::to_string(options_.queue_depth) +
          " pending requests); retry later"));
    } else {
      queue_.push_back(std::move(request));
      admitted = true;
      frac = static_cast<double>(queue_.size()) /
             static_cast<double>(options_.queue_depth);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.accepted;
      stats_.max_queue = std::max(stats_.max_queue, queue_.size());
    }
  }
  if (admitted) queue_cv_.notify_one();
  UpdatePressure(frac);
  return future;
}

StatusOr<Prediction> Server::Serve(const std::string& model,
                                   std::vector<int32_t> ids,
                                   const SubmitOptions& submit) {
  return Submit(model, std::move(ids), submit).get();
}

void Server::UpdatePressure(double queue_frac) {
  int stepped_to = -1;
  bool up = false;
  double pressure_now = 0.0;
  {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    pressure_ = (1.0 - options_.degrade_alpha) * pressure_ +
                options_.degrade_alpha * queue_frac;
    pressure_now = pressure_;
    if (!options_.degrade_auto) return;
    ++samples_since_change_;
    const int t = tier_.load(std::memory_order_relaxed);
    if (pressure_ > options_.degrade_high_water &&
        t < static_cast<int>(DegradeTier::kShed) &&
        samples_since_change_ >= options_.degrade_dwell_up) {
      tier_.store(t + 1, std::memory_order_release);
      samples_since_change_ = 0;
      degrade_up_.fetch_add(1, std::memory_order_relaxed);
      stepped_to = t + 1;
      up = true;
    } else if (pressure_ < options_.degrade_low_water && t > 0 &&
               samples_since_change_ >= options_.degrade_dwell_down) {
      tier_.store(t - 1, std::memory_order_release);
      samples_since_change_ = 0;
      degrade_down_.fetch_add(1, std::memory_order_relaxed);
      stepped_to = t - 1;
    }
  }
  if (stepped_to >= 0) {
    std::fprintf(
        stderr, "[stm] serve: %s to tier '%s' (pressure %.3f)\n",
        up ? "degrading" : "recovering",
        std::string(DegradeTierName(static_cast<DegradeTier>(stepped_to)))
            .c_str(),
        pressure_now);
  }
}

std::vector<std::unique_ptr<Server::Request>> Server::NextBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return {};
      continue;
    }
    // Give the batch until the oldest request's arrival + fill deadline
    // to fill; wake early the moment it is full (or on shutdown).
    Clock::time_point close_at =
        queue_.front()->enqueued + MillisDuration(options_.deadline_ms);
    // Deadline-aware close: if the tightest per-request deadline among
    // the requests this batch would take could be missed after adding the
    // expected batch wall time (EWMA), stop filling and run now. Waiting
    // longer could only convert answerable requests into deadline misses.
    double margin_ms;
    {
      std::lock_guard<std::mutex> degrade_lock(degrade_mu_);
      // Floor of 0.25 ms: before any batch has run the EWMA is zero, and
      // closing exactly AT the tightest deadline would expire the very
      // request the early close is meant to save.
      margin_ms = std::max(ewma_batch_ms_, 0.25);
    }
    const size_t scan = std::min(options_.max_batch, queue_.size());
    Clock::time_point tightest = Clock::time_point::max();
    for (size_t i = 0; i < scan; ++i) {
      tightest = std::min(tightest, queue_[i]->deadline);
    }
    if (tightest != Clock::time_point::max()) {
      close_at = std::min(close_at, tightest - MillisDuration(margin_ms));
    }
    queue_cv_.wait_until(lock, close_at, [&] {
      return stopping_ || queue_.size() >= options_.max_batch;
    });
    if (queue_.empty()) continue;  // another worker drained it first
    const size_t take = std::min(options_.max_batch, queue_.size());
    std::vector<std::unique_ptr<Request>> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;
  }
}

void Server::RunBatch(std::vector<std::unique_ptr<Request>> batch,
                      WorkerState* state) {
  const Clock::time_point batch_start = Clock::now();
  state->busy_since_ns.store(NowNs(), std::memory_order_release);

  const DegradeTier batch_tier =
      options_.degrade_auto ? tier() : DegradeTier::kFull;

  // Phase 1: cancellations and in-queue deadline expiries resolve here,
  // cheaply — the encoder never sees them, so under overload its capacity
  // goes entirely to requests that can still be answered in time.
  std::vector<std::unique_ptr<Request>> live, cancelled, expired;
  live.reserve(batch.size());
  {
    const Clock::time_point now = Clock::now();
    for (auto& request : batch) {
      if (request->cancel != nullptr && request->cancel->cancelled()) {
        cancelled.push_back(std::move(request));
      } else if (now >= request->deadline) {
        expired.push_back(std::move(request));
      } else {
        live.push_back(std::move(request));
      }
    }
  }
  // Stats are updated BEFORE the promises resolve (here and below) so a
  // caller that observed its future complete also observes it counted.
  if (!cancelled.empty() || !expired.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.cancelled += cancelled.size();
    stats_.deadline_exceeded += expired.size();
  }
  for (auto& request : cancelled) {
    SafeSet(request->promise, CancelledError("request cancelled by client"));
  }
  for (auto& request : expired) {
    SafeSet(request->promise,
            DeadlineExceededError("deadline passed while queued"));
  }

  const size_t n = live.size();
  if (n == 0) {
    state->busy_since_ns.store(0, std::memory_order_release);
    state->flagged.store(false, std::memory_order_release);
    return;
  }

  std::vector<std::optional<StatusOr<Prediction>>> results(n);
  uint64_t hook_failures = 0;
  uint64_t cache_sheds = 0;
  uint64_t degraded_count = 0;

  // Int8-tier answers are "degraded" only relative to a fp32 baseline; if
  // the operator configured int8 inference anyway, the tier changes
  // nothing and the answers stay reference bits.
  const bool degraded_encode =
      batch_tier == DegradeTier::kInt8 && !plm::QuantInferenceEnabled();

  auto classify = [&](size_t i, const float* pooled_ptr,
                      const la::Matrix* hidden_ptr, bool degraded) {
    Request& request = *live[i];
    try {
      Prediction prediction =
          request.classifier->Classify(request.ids, pooled_ptr, hidden_ptr);
      prediction.tier = batch_tier;
      prediction.degraded = degraded;
      if (degraded) ++degraded_count;
      results[i] = std::move(prediction);
    } catch (const std::exception& e) {
      // A throwing hook fails ITS request, never the batch or the worker.
      ++hook_failures;
      results[i] = UnavailableError("classifier '" +
                                    request.classifier->name() +
                                    "' threw: " + e.what());
    } catch (...) {
      ++hook_failures;
      results[i] = UnavailableError(
          "classifier '" + request.classifier->name() + "' threw");
    }
  };

  if (batch_tier >= DegradeTier::kCacheOnly) {
    // Cache-only tier: answer what the encode cache already knows — those
    // entries were written by the full-fidelity path, so hits are
    // bit-identical and NOT marked degraded — and shed the misses without
    // ever touching the encoder. Token-input models need no encoding and
    // always pass.
    for (size_t i = 0; i < n; ++i) {
      Request& request = *live[i];
      std::vector<float> pooled_vec;
      la::Matrix hidden_mat;
      const float* pooled_ptr = nullptr;
      const la::Matrix* hidden_ptr = nullptr;
      bool have = true;
      switch (request.classifier->input()) {
        case Classifier::Input::kTokens:
          break;
        case Classifier::Input::kPooled:
          have = model_->TryCachedPool(request.ids, &pooled_vec);
          pooled_ptr = pooled_vec.data();
          break;
        case Classifier::Input::kHidden:
          have = model_->TryCachedEncode(request.ids, &hidden_mat);
          hidden_ptr = &hidden_mat;
          break;
      }
      if (!have) {
        ++cache_sheds;
        results[i] = UnavailableError(
            "degraded to cache-only serving and this document is not "
            "cached; retry later");
        continue;
      }
      classify(i, pooled_ptr, hidden_ptr, /*degraded=*/false);
    }
  } else {
    // One encoder pass per needed representation, over the whole batch:
    // PoolBatch/EncodeBatch plan length buckets internally (PlanBuckets)
    // and run one forward per bucket, so coalescing happens here even
    // when the requests target different registered models.
    std::vector<size_t> pooled_index, hidden_index;
    std::vector<std::vector<int32_t>> pooled_docs, hidden_docs;
    for (size_t i = 0; i < n; ++i) {
      switch (live[i]->classifier->input()) {
        case Classifier::Input::kTokens:
          break;
        case Classifier::Input::kPooled:
          pooled_index.push_back(i);
          pooled_docs.push_back(live[i]->ids);
          break;
        case Classifier::Input::kHidden:
          hidden_index.push_back(i);
          hidden_docs.push_back(live[i]->ids);
          break;
      }
    }

    la::Matrix pooled;
    std::vector<la::Matrix> hidden;
    bool encode_failed = false;
    std::string encode_error;
    try {
      // The quant override is thread-local and scoped to the encode calls
      // only: PoolBatch/EncodeBatch read the quant mode on this thread
      // before entering their parallel regions, so an int8-tier batch
      // routes through the frozen encoder without disturbing fp32 callers
      // on other threads.
      std::optional<plm::ScopedQuantOverride> quant;
      if (batch_tier == DegradeTier::kInt8) quant.emplace(true);
      if (!pooled_docs.empty()) pooled = model_->PoolBatch(pooled_docs);
      if (!hidden_docs.empty()) hidden = model_->EncodeBatch(hidden_docs);
    } catch (const std::exception& e) {
      encode_failed = true;
      encode_error = e.what();
    } catch (...) {
      encode_failed = true;
    }
    if (encode_failed) {
      // A service never lets a batch failure take the process down (an
      // encode OOM, say): every carried request is failed instead.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.failed_batches;
        stats_.failed_batch_requests += n;
      }
      const std::string message =
          encode_error.empty() ? "batch execution failed"
                               : "batch execution failed: " + encode_error;
      for (auto& request : live) {
        SafeSet(request->promise, UnavailableError(message));
      }
      state->busy_since_ns.store(0, std::memory_order_release);
      state->flagged.store(false, std::memory_order_release);
      return;
    }

    std::vector<const float*> pooled_of(n, nullptr);
    std::vector<const la::Matrix*> hidden_of(n, nullptr);
    for (size_t j = 0; j < pooled_index.size(); ++j) {
      pooled_of[pooled_index[j]] = pooled.Row(j);
    }
    for (size_t j = 0; j < hidden_index.size(); ++j) {
      hidden_of[hidden_index[j]] = &hidden[j];
    }
    for (size_t i = 0; i < n; ++i) {
      const bool used_encoder =
          live[i]->classifier->input() != Classifier::Input::kTokens;
      classify(i, pooled_of[i], hidden_of[i],
               degraded_encode && used_encoder);
    }
  }

  uint64_t completed = 0;
  std::vector<double> latencies;
  latencies.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (results[i]->ok()) {
      ++completed;
      latencies.push_back(MillisSince(live[i]->enqueued));
    }
  }
  const double batch_ms = MillisSince(batch_start);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    stats_.completed += completed;
    stats_.failed_requests += hook_failures;
    stats_.degrade_shed += cache_sheds;
    stats_.degraded += degraded_count;
    for (const double ms : latencies) RecordLatencyLocked(ms);
  }
  {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    ewma_batch_ms_ = ewma_batch_ms_ == 0.0
                         ? batch_ms
                         : (1.0 - kBatchMsAlpha) * ewma_batch_ms_ +
                               kBatchMsAlpha * batch_ms;
  }
  for (size_t i = 0; i < n; ++i) {
    SafeSet(live[i]->promise, std::move(*results[i]));
  }
  state->busy_since_ns.store(0, std::memory_order_release);
  state->flagged.store(false, std::memory_order_release);
}

void Server::WorkerLoop(size_t worker_index) {
  WorkerState* state = worker_states_[worker_index].get();
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch = NextBatch();
    if (batch.empty()) return;  // shutdown
    RunBatch(std::move(batch), state);
  }
}

void Server::WatchdogLoop() {
  const double threshold_ms = options_.watchdog_ms;
  const Clock::duration poll =
      MillisDuration(std::max(1.0, threshold_ms / 4.0));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const int64_t now_ns = NowNs();
    for (size_t i = 0; i < worker_states_.size(); ++i) {
      WorkerState& worker = *worker_states_[i];
      const int64_t busy = worker.busy_since_ns.load(std::memory_order_acquire);
      if (busy == 0) continue;
      const double stuck_ms = static_cast<double>(now_ns - busy) / 1e6;
      if (stuck_ms >= threshold_ms &&
          !worker.flagged.exchange(true, std::memory_order_acq_rel)) {
        // Flagged once per stall (cleared when the batch finishes): a
        // hung Classify hook is surfaced, not silent.
        watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "[stm] serve: watchdog: worker %zu stuck in one batch "
                     "for %.1f ms (threshold %.1f ms)\n",
                     i, stuck_ms, threshold_ms);
      }
    }
  }
}

void Server::Shutdown() {
  std::deque<std::unique_ptr<Request>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      orphaned.swap(queue_);
    }
  }
  queue_cv_.notify_all();
  if (!orphaned.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.orphaned += orphaned.size();
  }
  for (auto& request : orphaned) {
    SafeSet(request->promise, UnavailableError("server shut down"));
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

Server::Stats Server::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.degrade_up = degrade_up_.load(std::memory_order_relaxed);
  out.degrade_down = degrade_down_.load(std::memory_order_relaxed);
  out.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  return out;
}

Server::Health Server::health() const {
  Health health;
  {
    std::lock_guard<std::mutex> lock(mu_);
    health.queue_size = queue_.size();
    health.ready = !stopping_;
  }
  {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    health.pressure = pressure_;
    health.ewma_batch_ms = ewma_batch_ms_;
  }
  health.tier = tier();
  if (health.tier == DegradeTier::kShed) health.ready = false;
  for (const auto& worker : worker_states_) {
    if (worker->flagged.load(std::memory_order_acquire)) {
      ++health.stuck_workers;
    }
  }
  const Stats snapshot = stats();
  const uint64_t submitted =
      snapshot.accepted + snapshot.shed + snapshot.invalid;
  if (submitted > 0) {
    health.shed_rate =
        static_cast<double>(snapshot.shed + snapshot.degrade_shed) /
        static_cast<double>(submitted);
  }
  if (snapshot.accepted > 0) {
    health.deadline_miss_rate =
        static_cast<double>(snapshot.deadline_exceeded) /
        static_cast<double>(snapshot.accepted);
  }
  return health;
}

void Server::RecordLatencyLocked(double ms) {
  ++latencies_seen_;
  if (latencies_ms_.size() < options_.latency_reservoir) {
    latencies_ms_.push_back(ms);
    return;
  }
  // Algorithm R: once full, keep each of the `latencies_seen_` recorded
  // values in the sample with equal probability capacity/seen.
  const uint64_t slot = latency_rng_.UniformInt(latencies_seen_);
  if (slot < latencies_ms_.size()) {
    latencies_ms_[slot] = ms;
  }
}

std::vector<double> Server::TakeLatenciesMs() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<double> out;
  out.swap(latencies_ms_);
  latencies_seen_ = 0;
  return out;
}

}  // namespace stm::serve
