#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/gemm_kernels.h"

namespace stm::la {

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

float* Matrix::Row(size_t r) {
  STM_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const float* Matrix::Row(size_t r) const {
  STM_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

float& Matrix::At(size_t r, size_t c) {
  STM_CHECK_LT(r, rows_);
  STM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

float Matrix::At(size_t r, size_t c) const {
  STM_CHECK_LT(r, rows_);
  STM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

void Matrix::Reshape(size_t rows, size_t cols) {
  STM_CHECK_EQ(rows * cols, data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::Fill(float value) {
  for (float& v : data_) v = value;
}

std::vector<float> Matrix::RowVec(size_t r) const {
  const float* p = Row(r);
  return std::vector<float>(p, p + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<float>& values) {
  STM_CHECK_EQ(values.size(), cols_);
  std::memcpy(Row(r), values.data(), cols_ * sizeof(float));
}

float Dot(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

void NormalizeInPlace(float* a, size_t n) {
  const float norm = Norm(a, n);
  if (norm > 0.0f) ScaleInPlace(a, n, 1.0f / norm);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleInPlace(float* a, size_t n, float s) {
  for (size_t i = 0; i < n; ++i) a[i] *= s;
}

float Cosine(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

float Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  STM_CHECK_EQ(a.size(), b.size());
  return Cosine(a.data(), b.data(), a.size());
}

std::vector<float> MeanOf(const std::vector<const float*>& vecs, size_t n) {
  std::vector<float> mean(n, 0.0f);
  if (vecs.empty()) return mean;
  for (const float* v : vecs) Axpy(1.0f, v, mean.data(), n);
  ScaleInPlace(mean.data(), n, 1.0f / static_cast<float>(vecs.size()));
  return mean;
}

// The three transpose variants funnel into the packed, register-tiled
// kernel library (gemm_kernels.h) via strided operand views; shapes too
// small to amortize packing run the serial scalar reference instead.
// Both the dispatch and the packed chunking are shape-only, so output is
// bit-identical across STM_NUM_THREADS either way.

void GemmAcc(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n) {
  if (UsePackedGemm(m, k, n)) {
    PackedGemmAcc(a, k, 1, b, n, 1, c, m, k, n);
  } else {
    ReferenceGemmAcc(a, b, c, m, k, n);
  }
}

void GemmBtAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n) {
  if (UsePackedGemm(m, k, n)) {
    PackedGemmAcc(a, k, 1, b, 1, k, c, m, k, n);
  } else {
    ReferenceGemmBtAcc(a, b, c, m, k, n);
  }
}

void GemmAtAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n) {
  if (UsePackedGemm(m, k, n)) {
    PackedGemmAcc(a, 1, m, b, n, 1, c, m, k, n);
  } else {
    ReferenceGemmAtAcc(a, b, c, m, k, n);
  }
}

void Gemm(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  STM_CHECK_EQ(a.cols(), b.rows());
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    c = Matrix(a.rows(), b.cols());
  } else if (!accumulate) {
    c.Fill(0.0f);
  }
  GemmAcc(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
}

void GemmBt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  STM_CHECK_EQ(a.cols(), b.cols());
  if (c.rows() != a.rows() || c.cols() != b.rows()) {
    c = Matrix(a.rows(), b.rows());
  } else if (!accumulate) {
    c.Fill(0.0f);
  }
  GemmBtAcc(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
}

void GemmAt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  STM_CHECK_EQ(a.rows(), b.rows());
  if (c.rows() != a.cols() || c.cols() != b.cols()) {
    c = Matrix(a.cols(), b.cols());
  } else if (!accumulate) {
    c.Fill(0.0f);
  }
  GemmAtAcc(a.data(), b.data(), c.data(), a.cols(), a.rows(), b.cols());
}

void NormalizeRows(Matrix& m) {
  // Rows are disjoint, so the row loop is the parallel axis.
  float* data = m.data();
  const size_t cols = m.cols();
  ParallelFor(0, m.rows(), GrainForOps(cols), [=](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) NormalizeInPlace(data + r * cols, cols);
  });
}

Matrix Pca(const Matrix& data, size_t k, int power_iters) {
  STM_CHECK_GT(data.rows(), 0u);
  STM_CHECK_GE(data.cols(), k);
  const size_t n = data.rows();
  const size_t d = data.cols();

  // Center the data (row chunks are disjoint; the mean stays serial so
  // its accumulation order is fixed).
  std::vector<float> mean(d, 0.0f);
  for (size_t i = 0; i < n; ++i) Axpy(1.0f, data.Row(i), mean.data(), d);
  ScaleInPlace(mean.data(), d, 1.0f / static_cast<float>(n));
  Matrix centered(n, d);
  ParallelFor(0, n, GrainForOps(d), [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* src = data.Row(i);
      float* dst = centered.Row(i);
      for (size_t j = 0; j < d; ++j) dst[j] = src[j] - mean[j];
    }
  });

  // Covariance (d x d).
  Matrix cov;
  GemmAt(centered, centered, cov);
  for (size_t i = 0; i < cov.size(); ++i) {
    cov.data()[i] /= static_cast<float>(n);
  }

  // Orthogonal power iteration for the top-k eigenvectors.
  Rng rng(42);
  Matrix components(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      components.At(c, j) = static_cast<float>(rng.Normal());
    }
  }
  // Each iteration multiplies every component by the covariance in one
  // (parallel) GEMM. cov is symmetric, so cov * v_c is row c of
  // components * cov^T; component c is only overwritten in its own
  // deflation step below, which reads next.Row(c) computed from the
  // previous iterate — exactly the per-component update order of the
  // serial power iteration.
  Matrix next;
  for (int iter = 0; iter < power_iters; ++iter) {
    GemmBt(components, cov, next);  // next[c] = cov * components[c]
    for (size_t c = 0; c < k; ++c) {
      float* v = next.Row(c);
      // Deflate against earlier (already updated) components.
      for (size_t prev = 0; prev < c; ++prev) {
        const float proj = Dot(v, components.Row(prev), d);
        Axpy(-proj, components.Row(prev), v, d);
      }
      NormalizeInPlace(v, d);
      std::memcpy(components.Row(c), v, d * sizeof(float));
    }
  }

  // Project: centered (n x d) times components^T (d x k), one parallel
  // GEMM instead of n*k serial dot products.
  Matrix projected;
  GemmBt(centered, components, projected);
  return projected;
}

}  // namespace stm::la
