#include "datasets/specs.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/string_util.h"

namespace stm::datasets {

namespace {

ClassSpec Leaf(const std::string& name,
               std::vector<std::string> keywords = {}, double prior = 1.0,
               int parent = -1) {
  ClassSpec spec;
  spec.name = name;
  spec.keywords = std::move(keywords);
  spec.prior = prior;
  spec.parent = parent;
  return spec;
}

}  // namespace

SyntheticSpec AgNewsSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "agnews";
  spec.seed = seed;
  spec.num_docs = 700;
  spec.num_ambiguous = 6;
  spec.classes = {
      Leaf("politics", {"government", "election", "senate"}),
      Leaf("sports", {"game", "team", "championship"}),
      Leaf("business", {"market", "stock", "economy"}),
      Leaf("technology", {"software", "internet", "computer"}),
  };
  return spec;
}

SyntheticSpec NytSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "nyt";
  spec.seed = seed;
  spec.num_docs = 900;
  spec.num_ambiguous = 10;
  spec.class_vocab = 14;   // 30 themes: keep per-theme vocab compact
  spec.parent_share = 0.35;
  // 5 coarse sections x 5 fine subtopics, imbalanced like the real NYT.
  struct Section {
    const char* name;
    double prior;
    std::vector<std::pair<const char*, double>> subs;
  };
  const std::vector<Section> sections = {
      {"politics", 3.0, {{"election", 3.0}, {"congress", 2.0},
                          {"diplomacy", 1.0}, {"immigration", 1.0},
                          {"budget", 0.5}}},
      {"sports", 2.0, {{"soccer", 3.0}, {"baseball", 2.0},
                        {"hockey", 1.0}, {"tennis", 0.7}, {"golf", 0.4}}},
      {"business", 1.5, {{"economy", 2.0}, {"stocks", 1.5},
                          {"energy", 1.0}, {"retail", 0.7},
                          {"banking", 0.5}}},
      {"science", 1.0, {{"space", 2.0}, {"physics", 1.0},
                         {"biology", 1.0}, {"climate", 0.8},
                         {"medicine", 0.6}}},
      {"arts", 0.8, {{"music", 2.0}, {"film", 1.5}, {"theater", 0.8},
                      {"dance", 0.4}, {"painting", 0.3}}},
  };
  for (const Section& section : sections) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(section.name, {}, 1.0, -1));
    for (const auto& [sub, prior] : section.subs) {
      spec.classes.push_back(Leaf(sub, {}, prior, parent));
    }
  }
  return spec;
}

SyntheticSpec TwentyNewsSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "20news";
  spec.seed = seed;
  spec.num_docs = 800;
  spec.num_ambiguous = 14;   // 20News is the noisiest benchmark
  spec.topical_fraction = 0.42;
  spec.parent_share = 0.4;
  struct Group {
    const char* name;
    std::vector<const char*> subs;
  };
  const std::vector<Group> groups = {
      {"computer", {"graphics", "windows", "hardware", "xwindows"}},
      {"recreation", {"autos", "motorcycles", "baseball", "hockey"}},
      {"science", {"cryptography", "electronics", "medicine", "space"}},
      {"politics", {"guns", "mideast", "misc"}},
      {"religion", {"atheism", "christian"}},
      {"forsale", {"marketplace", "listings"}},
  };
  for (const Group& group : groups) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(group.name, {}, 1.0, -1));
    double prior = 1.4;
    for (const char* sub : group.subs) {
      spec.classes.push_back(Leaf(sub, {}, prior, parent));
      prior *= 0.8;
    }
  }
  return spec;
}

SyntheticSpec NytTopicSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "nyt-topic";
  spec.seed = seed;
  spec.num_docs = 900;
  spec.num_ambiguous = 8;
  const std::vector<std::pair<const char*, double>> topics = {
      {"politics", 9.0},  {"sports", 6.0},   {"business", 4.0},
      {"science", 2.5},   {"health", 2.0},   {"education", 1.5},
      {"arts", 1.0},      {"travel", 0.6},   {"estate", 0.33}};
  for (const auto& [name, prior] : topics) {
    spec.classes.push_back(Leaf(name, {}, prior));
  }
  return spec;
}

SyntheticSpec NytLocationSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "nyt-location";
  spec.seed = seed;
  spec.num_docs = 900;
  spec.num_ambiguous = 6;
  const std::vector<std::pair<const char*, double>> places = {
      {"america", 8.0}, {"iraq", 5.0},    {"japan", 3.0},
      {"britain", 2.5}, {"china", 2.0},   {"france", 1.5},
      {"russia", 1.2},  {"germany", 1.0}, {"canada", 0.8},
      {"italy", 0.5}};
  for (const auto& [name, prior] : places) {
    spec.classes.push_back(Leaf(name, {}, prior));
  }
  return spec;
}

SyntheticSpec YelpSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "yelp";
  spec.seed = seed;
  spec.num_docs = 700;
  // Sentiment: fewer distinctive tokens, heavy ambiguity, more background.
  spec.class_vocab = 18;
  spec.topical_fraction = 0.38;
  spec.num_ambiguous = 12;
  spec.classes = {
      Leaf("good", {"delicious", "friendly", "amazing"}),
      Leaf("bad", {"terrible", "rude", "awful"}),
  };
  return spec;
}

SyntheticSpec ImdbSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "imdb";
  spec.seed = seed;
  spec.num_docs = 700;
  spec.class_vocab = 20;
  spec.topical_fraction = 0.4;
  spec.num_ambiguous = 10;
  spec.classes = {
      Leaf("good", {"masterpiece", "brilliant", "moving"}),
      Leaf("bad", {"boring", "waste", "disaster"}),
  };
  return spec;
}

SyntheticSpec DbpediaSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "dbpedia";
  spec.seed = seed;
  spec.num_docs = 1100;
  spec.num_ambiguous = 6;
  const std::vector<const char*> classes = {
      "company", "school", "artist",  "athlete", "politician",
      "transport", "building", "river", "village", "animal",
      "plant",   "album",  "film",    "book"};
  for (const char* name : classes) spec.classes.push_back(Leaf(name));
  return spec;
}

SyntheticSpec AmazonFlatSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "amazon-flat";
  spec.seed = seed;
  spec.num_docs = 800;
  spec.num_ambiguous = 8;
  spec.topical_fraction = 0.42;
  spec.classes = {
      Leaf("good", {"excellent", "perfect", "recommend"}),
      Leaf("bad", {"broken", "refund", "disappointing"}),
  };
  return spec;
}

SyntheticSpec ArxivSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "arxiv";
  spec.seed = seed;
  spec.num_docs = 900;
  spec.parent_share = 0.4;
  struct Area {
    const char* name;
    std::vector<const char*> subs;
  };
  const std::vector<Area> areas = {
      {"computing", {"learning", "systems", "theory"}},
      {"physics", {"optics", "astrophysics", "mechanics"}},
      {"mathematics", {"algebra", "statistics", "geometry"}},
  };
  for (const Area& area : areas) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(area.name, {}, 1.0, -1));
    double prior = 1.5;
    for (const char* sub : area.subs) {
      spec.classes.push_back(Leaf(sub, {}, prior, parent));
      prior *= 0.75;
    }
  }
  return spec;
}

SyntheticSpec YelpHierSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "yelp-hier";
  spec.seed = seed;
  spec.num_docs = 700;
  spec.parent_share = 0.4;
  spec.num_ambiguous = 8;
  struct Polarity {
    const char* name;
    std::vector<const char*> subs;
  };
  const std::vector<Polarity> polarities = {
      {"positive", {"food", "service", "ambience"}},
      {"negative", {"price", "wait", "hygiene"}},
  };
  for (const Polarity& polarity : polarities) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(polarity.name, {}, 1.0, -1));
    for (const char* sub : polarity.subs) {
      spec.classes.push_back(Leaf(sub, {}, 1.0, parent));
    }
  }
  return spec;
}

SyntheticSpec AmazonTaxoSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "amazon-taxo";
  spec.seed = seed;
  spec.num_docs = 700;
  spec.multi_label = true;
  spec.max_labels = 3;
  spec.parent_share = 0.3;
  spec.num_aux_topics = 8;
  spec.aux_docs_per_topic = 50;
  struct Dept {
    const char* name;
    std::vector<const char*> subs;
  };
  const std::vector<Dept> departments = {
      {"electronics", {"camera", "laptop", "headphones", "tablet"}},
      {"kitchen", {"cookware", "blender", "cutlery", "bakeware"}},
      {"outdoors", {"camping", "fishing", "cycling", "hiking"}},
      {"beauty", {"skincare", "fragrance", "makeup"}},
      {"toys", {"puzzles", "dolls", "blocks"}},
      {"automotive", {"tires", "oils", "batteries"}},
  };
  for (const Dept& dept : departments) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(dept.name, {}, 1.0, -1));
    double prior = 1.5;
    for (const char* sub : dept.subs) {
      spec.classes.push_back(Leaf(sub, {}, prior, parent));
      prior *= 0.85;
    }
  }
  return spec;
}

SyntheticSpec DbpediaTaxoSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.dataset_name = "dbpedia-taxo";
  spec.seed = seed;
  spec.num_docs = 700;
  spec.multi_label = true;
  spec.max_labels = 2;
  spec.parent_share = 0.3;
  spec.num_aux_topics = 8;
  spec.aux_docs_per_topic = 50;
  struct Branch {
    const char* name;
    std::vector<const char*> subs;
  };
  const std::vector<Branch> branches = {
      {"agent", {"company", "politician", "athlete", "artist"}},
      {"place", {"river", "village", "building", "mountain"}},
      {"work", {"album", "film", "book", "software"}},
      {"species", {"animal", "plant", "fungus"}},
  };
  for (const Branch& branch : branches) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(branch.name, {}, 1.0, -1));
    for (const char* sub : branch.subs) {
      spec.classes.push_back(Leaf(sub, {}, 1.0, parent));
    }
  }
  return spec;
}

namespace {

SyntheticSpec GithubLike(const char* name, uint64_t seed,
                         std::vector<ClassSpec> classes, size_t docs) {
  SyntheticSpec spec;
  spec.dataset_name = name;
  spec.seed = seed;
  spec.num_docs = docs;
  spec.classes = std::move(classes);
  spec.num_users = 40;
  spec.user_affinity = 0.85;
  spec.num_tags = 3 * spec.classes.size();
  spec.tags_per_doc = 2;
  spec.tag_noise = 0.15;
  spec.topical_fraction = 0.4;
  spec.num_ambiguous = 6;
  return spec;
}

}  // namespace

SyntheticSpec GithubBioSpec(uint64_t seed) {
  std::vector<ClassSpec> classes;
  for (const char* name :
       {"genomics", "proteomics", "imaging", "sequencing", "phylogeny",
        "epidemiology", "neuroscience", "immunology", "metabolomics",
        "pharmacology"}) {
    classes.push_back(Leaf(name));
  }
  // Smallest corpus: metadata should matter most here (paper's finding).
  SyntheticSpec spec = GithubLike("github-bio", seed, std::move(classes), 260);
  spec.topical_fraction = 0.18;  // weak text signal
  spec.topic_noise = 0.35;
  spec.doc_len_min = 8;
  spec.doc_len_max = 20;
  spec.num_ambiguous = 12;
  return spec;
}

SyntheticSpec GithubAiSpec(uint64_t seed) {
  std::vector<ClassSpec> classes;
  for (const char* name :
       {"vision", "language", "speech", "planning", "robotics",
        "reinforcement", "optimization", "graphs", "retrieval",
        "recommendation", "forecasting", "clustering", "generation",
        "translation"}) {
    classes.push_back(Leaf(name));
  }
  SyntheticSpec spec = GithubLike("github-ai", seed, std::move(classes), 380);
  spec.topical_fraction = 0.22;
  spec.topic_noise = 0.3;
  spec.doc_len_min = 10;
  spec.doc_len_max = 24;
  return spec;
}

SyntheticSpec GithubSecSpec(uint64_t seed) {
  std::vector<ClassSpec> classes = {
      Leaf("malware"), Leaf("cryptography"), Leaf("forensics")};
  SyntheticSpec spec =
      GithubLike("github-sec", seed, std::move(classes), 900);
  spec.topical_fraction = 0.45;  // large corpus, stronger text signal
  return spec;
}

SyntheticSpec AmazonMetaSpec(uint64_t seed) {
  std::vector<ClassSpec> classes;
  for (const char* name :
       {"books", "electronics", "clothing", "kitchen", "sports",
        "beauty", "toys", "grocery", "automotive", "garden"}) {
    classes.push_back(Leaf(name));
  }
  SyntheticSpec spec =
      GithubLike("amazon-meta", seed, std::move(classes), 800);
  spec.topical_fraction = 0.45;
  return spec;
}

SyntheticSpec TwitterSpec(uint64_t seed) {
  std::vector<ClassSpec> classes;
  for (const char* name : {"food", "shop", "travel", "nightlife",
                           "entertainment", "outdoors", "fitness",
                           "education", "events"}) {
    classes.push_back(Leaf(name));
  }
  SyntheticSpec spec = GithubLike("twitter", seed, std::move(classes), 700);
  // Tweets are short and noisy.
  spec.doc_len_min = 6;
  spec.doc_len_max = 14;
  spec.topical_fraction = 0.3;
  spec.topic_noise = 0.25;
  spec.num_ambiguous = 9;
  return spec;
}

namespace {

SyntheticSpec BibLike(const char* name, uint64_t seed,
                      const std::vector<std::vector<const char*>>& areas) {
  SyntheticSpec spec;
  spec.dataset_name = name;
  spec.seed = seed;
  spec.num_docs = 700;
  spec.multi_label = true;
  spec.max_labels = 3;
  spec.parent_share = 0.25;
  spec.num_aux_topics = 10;
  spec.aux_docs_per_topic = 40;
  spec.pretrain_include_eval = false;  // eval domain unseen at pre-training
  spec.refs_per_doc = 3;
  spec.ref_same_class = 0.85;
  spec.venue_prefix = "venue";
  spec.num_users = 60;  // authors
  spec.user_affinity = 0.9;
  for (const auto& area : areas) {
    const int parent = static_cast<int>(spec.classes.size());
    spec.classes.push_back(Leaf(area[0], {}, 1.0, -1));
    for (size_t i = 1; i < area.size(); ++i) {
      spec.classes.push_back(Leaf(area[i], {}, 1.0, parent));
    }
  }
  return spec;
}

}  // namespace

SyntheticSpec MagCsSpec(uint64_t seed) {
  return BibLike(
      "mag-cs", seed,
      {{"systems", "databases", "networking", "compilers", "security"},
       {"intelligence", "learning", "vision", "language", "robotics"},
       {"theory", "algorithms", "complexity", "logic"},
       {"interfaces", "graphics", "visualization"}});
}

SyntheticSpec PubMedSpec(uint64_t seed) {
  return BibLike(
      "pubmed", seed,
      {{"oncology", "carcinoma", "lymphoma", "chemotherapy"},
       {"cardiology", "arrhythmia", "hypertension", "ischemia"},
       {"neurology", "epilepsy", "dementia", "stroke"},
       {"infection", "virology", "bacteriology", "vaccines"}});
}

FlatView FlattenToDepth(const SyntheticDataset& data, int depth) {
  FlatView view;
  view.corpus.vocab() = data.corpus.vocab();
  // Collect nodes at `depth` in stable order.
  const std::vector<int> nodes = data.tree.NodesAtDepth(depth);
  STM_CHECK(!nodes.empty()) << "no taxonomy nodes at depth " << depth;
  std::map<int, int> node_to_label;
  for (int node : nodes) {
    node_to_label[node] = static_cast<int>(view.corpus.label_names().size());
    view.corpus.label_names().push_back(data.tree.NameOf(node));
    view.node_of_label.push_back(node);
  }
  for (const text::Document& doc : data.corpus.docs()) {
    STM_CHECK_LT(static_cast<size_t>(depth), doc.label_path.size());
    text::Document flat;
    flat.tokens = doc.tokens;
    flat.metadata = doc.metadata;
    flat.labels = {node_to_label.at(doc.label_path[static_cast<size_t>(depth)])};
    view.corpus.docs().push_back(std::move(flat));
  }
  // Supervision: node name token(s) plus the full seed-keyword sets of
  // descendant leaves (keeping ambiguous user keywords, which is what the
  // contextualization methods disambiguate).
  for (int node : nodes) {
    std::vector<int32_t> seeds;
    for (const std::string& part :
         SplitWhitespace(data.tree.NameOf(node))) {
      seeds.push_back(view.corpus.vocab().IdOf(part));
    }
    for (size_t l = 0; l < data.leaf_classes.size(); ++l) {
      const int leaf = data.leaf_classes[l];
      const std::vector<int> chain = data.tree.WithAncestors(leaf);
      if (std::find(chain.begin(), chain.end(), node) == chain.end()) {
        continue;
      }
      if (leaf == node) {
        // The node itself is a leaf: inherit its original seed set.
        for (int32_t id : data.supervision.class_keywords[l]) {
          seeds.push_back(id);
        }
      } else {
        for (int32_t id : data.supervision.class_keywords[l]) {
          seeds.push_back(id);
        }
      }
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    // Keep the node-name token first (LABELS mode reads seeds[0]).
    const int32_t name_id = view.corpus.vocab().IdOf(
        SplitWhitespace(data.tree.NameOf(node))[0]);
    auto it = std::find(seeds.begin(), seeds.end(), name_id);
    if (it != seeds.end()) std::iter_swap(seeds.begin(), it);
    view.supervision.class_keywords.push_back(seeds);
  }
  view.supervision.labeled_docs.assign(nodes.size(), {});
  return view;
}

}  // namespace stm::datasets
