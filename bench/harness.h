#ifndef STM_BENCH_HARNESS_H_
#define STM_BENCH_HARNESS_H_

// Shared infrastructure for the experiment benches. Each bench binary
// regenerates one table or figure of the tutorial: it builds the matching
// synthetic dataset, loads (or pre-trains once, then caches) the MiniLm
// stand-in for BERT, runs every method row, and prints the table.

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/specs.h"
#include "datasets/synthetic.h"
#include "plm/minilm.h"

namespace stm::bench {

// Directory for cached pre-trained MiniLm weights (first run pays the
// pre-training cost; later runs load instantly).
inline std::string CacheDir() {
  const char* env = std::getenv("STM_CACHE_DIR");
  const std::string dir = env != nullptr ? env : "plm_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    // Returning the uncreatable directory anyway would make every cache
    // write fail with a confusing downstream error; fall back to the
    // current directory, which the bench is already running from.
    std::fprintf(stderr,
                 "[bench] cannot create cache dir '%s': %s; caching in .\n",
                 dir.c_str(), ec.message().c_str());
    return ".";
  }
  return dir;
}

// Standard MiniLm sized for bench corpora.
inline std::unique_ptr<plm::MiniLm> PretrainedLm(
    const datasets::SyntheticDataset& data, int steps = 1200) {
  plm::MiniLmConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 40;
  plm::PretrainConfig pretrain;
  pretrain.steps = steps;
  pretrain.batch = 8;
  WallTimer timer;
  auto model = plm::MiniLm::LoadOrPretrain(CacheDir(), data.fingerprint,
                                           config, pretrain,
                                           data.pretrain_docs);
  if (timer.Seconds() > 2.0) {
    std::fprintf(stderr, "[bench] pre-trained LM in %.1fs (now cached)\n",
                 timer.Seconds());
  }
  return model;
}

// Fixed-width table printer matching the tutorial's layout.
class Table {
 public:
  // `title` is printed above the table; `columns` are the header cells
  // after the leading method-name column.
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(const std::string& name, const std::vector<double>& values) {
    rows_.push_back({name, values});
  }

  void AddSeparator() { rows_.push_back({"-", {}}); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%-28s", "Method");
    for (const auto& column : columns_) {
      std::printf("%12s", column.c_str());
    }
    std::printf("\n");
    const size_t width = 28 + 12 * columns_.size();
    std::printf("%s\n", std::string(width, '-').c_str());
    for (const auto& row : rows_) {
      if (row.name == "-" && row.values.empty()) {
        std::printf("%s\n", std::string(width, '-').c_str());
        continue;
      }
      std::printf("%-28s", row.name.c_str());
      for (double value : row.values) {
        if (value < 0) {
          std::printf("%12s", "-");
        } else {
          std::printf("%12.3f", value);
        }
      }
      std::printf("\n");
    }
    std::fflush(stdout);
  }

 private:
  struct Row {
    std::string name;
    std::vector<double> values;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// Progress line to stderr (tables go to stdout).
inline void Progress(const std::string& message) {
  std::fprintf(stderr, "[bench] %s\n", message.c_str());
}

// Optional per-method wall-time recording. When STM_BENCH_JSON=<path> is
// set, every MethodTimer appends {"table", "method", "seconds"} to an
// in-process list that is written to <path> as a JSON array at exit.
// With the variable unset, recording is a no-op.
class BenchJsonWriter {
 public:
  static BenchJsonWriter& Instance() {
    static BenchJsonWriter writer;
    return writer;
  }

  void Record(const std::string& table, const std::string& method,
              double seconds) {
    if (path_.empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back({table, method, seconds});
  }

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

 private:
  struct Entry {
    std::string table;
    std::string method;
    double seconds;
  };

  BenchJsonWriter() {
    const char* env = std::getenv("STM_BENCH_JSON");
    if (env != nullptr) path_ = env;
  }

  ~BenchJsonWriter() { Flush(); }

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void Flush() {
    if (path_.empty() || entries_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f,
                   "  {\"table\": \"%s\", \"method\": \"%s\", "
                   "\"seconds\": %.6f}%s\n",
                   Escaped(entries_[i].table).c_str(),
                   Escaped(entries_[i].method).c_str(), entries_[i].seconds,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

  std::string path_;
  std::mutex mutex_;
  std::vector<Entry> entries_;
};

// Scope guard timing one method row; records into BenchJsonWriter on
// destruction (no-op unless STM_BENCH_JSON is set).
class MethodTimer {
 public:
  MethodTimer(std::string table, std::string method)
      : table_(std::move(table)), method_(std::move(method)) {}
  ~MethodTimer() {
    BenchJsonWriter::Instance().Record(table_, method_, timer_.Seconds());
  }

  MethodTimer(const MethodTimer&) = delete;
  MethodTimer& operator=(const MethodTimer&) = delete;

  double Seconds() const { return timer_.Seconds(); }

 private:
  std::string table_;
  std::string method_;
  WallTimer timer_;
};

}  // namespace stm::bench

#endif  // STM_BENCH_HARNESS_H_
