#ifndef STM_COMMON_STATUS_H_
#define STM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace stm {

// Error propagation for everything reachable from *external input*: files
// on disk (model caches, embedding tables, TSV corpora), user-supplied
// paths, and transient filesystem conditions. Programmer errors (shape
// mismatches, out-of-range indices) keep aborting via STM_CHECK; see
// DESIGN.md "Error handling & durability" for the boundary.

enum class StatusCode {
  kOk = 0,
  kIoError = 1,           // the filesystem said no (and retrying won't help)
  kCorruptData = 2,       // bytes were read but failed validation
  kInvalidArgument = 3,   // caller-supplied data violates the contract
  kUnavailable = 4,       // missing file or transient failure; retry may help
  kDeadlineExceeded = 5,  // the request's deadline passed before completion;
                          // retrying the same deadline cannot help
  kCancelled = 6,         // the caller cancelled the request; never retried
};

// Short stable name for a code ("kIoError" -> "IO_ERROR" style).
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "IO_ERROR: open failed: /tmp/x (No such file or directory)".
  std::string ToString() const;

  // Returns a copy with "context: " prepended to the message, keeping the
  // code. No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Constructor helpers, mirroring absl naming.
Status IoError(std::string_view message);
Status CorruptDataError(std::string_view message);
Status InvalidArgumentError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DeadlineExceededError(std::string_view message);
Status CancelledError(std::string_view message);

// Value-or-error: holds a T when ok(), a non-OK Status otherwise.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from a non-OK status (an OK status without a value is a
  // programmer error and aborts).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    STM_CHECK(!status_.ok()) << "StatusOr built from an OK Status";
  }

  // Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    STM_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    STM_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    STM_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace stm

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function when non-OK.
#define STM_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::stm::Status stm_status_ = (expr);           \
    if (!stm_status_.ok()) return stm_status_;    \
  } while (0)

#define STM_STATUS_CONCAT_INNER_(a, b) a##b
#define STM_STATUS_CONCAT_(a, b) STM_STATUS_CONCAT_INNER_(a, b)

// Evaluates `expr` (a StatusOr<T> expression); on success assigns the value
// to `lhs` (which may declare a new variable), otherwise returns the error.
#define STM_ASSIGN_OR_RETURN(lhs, expr)                             \
  STM_ASSIGN_OR_RETURN_IMPL_(                                       \
      STM_STATUS_CONCAT_(stm_statusor_, __LINE__), lhs, expr)

#define STM_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                               \
  if (!statusor.ok()) return statusor.status();         \
  lhs = std::move(statusor).value()

#endif  // STM_COMMON_STATUS_H_
