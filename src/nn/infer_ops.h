#ifndef STM_NN_INFER_OPS_H_
#define STM_NN_INFER_OPS_H_

#include <cstddef>

namespace stm::nn {

// Inference-only forward kernels over raw float buffers. These replicate
// the forward math of the autograd ops in nn/ops.cc exactly (same
// constants, same accumulation order) so a frozen-weight forward pass
// (plm::QuantizedMiniLm) differs from the fp32 graph only by weight
// quantization, never by activation-function drift. No Node construction,
// no gradient bookkeeping.

// The tanh-approximation GELU used by both the autograd op and the
// inference path.
float GeluScalar(float x);

// x[i] = GeluScalar(x[i]) for i in [0, count).
void GeluInplace(float* x, size_t count);

// x[i] = max(x[i], 0).
void ReluInplace(float* x, size_t count);

// Adds bias[j] to every row of the row-major x[rows, d].
void AddBiasRows(float* x, size_t rows, size_t d, const float* bias);

// Row-wise layer norm of x[rows, d] into out[rows, d] (may not alias x):
// out = (x - mean) * rsqrt(var + eps) * gamma + beta with the biased
// variance, matching nn::LayerNorm's forward.
void LayerNormRows(const float* x, size_t rows, size_t d, const float* gamma,
                   const float* beta, float eps, float* out);

// In-place row-wise softmax of x[rows, d] with max subtraction, matching
// nn::SoftmaxLastDim's forward.
void SoftmaxRowsInplace(float* x, size_t rows, size_t d);

}  // namespace stm::nn

#endif  // STM_NN_INFER_OPS_H_
