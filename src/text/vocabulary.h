#ifndef STM_TEXT_VOCABULARY_H_
#define STM_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stm::text {

// Token ids reserved in every vocabulary, in this order.
inline constexpr int32_t kPadId = 0;
inline constexpr int32_t kUnkId = 1;
inline constexpr int32_t kClsId = 2;
inline constexpr int32_t kSepId = 3;
inline constexpr int32_t kMaskId = 4;
inline constexpr int32_t kNumSpecialTokens = 5;

// Bidirectional token <-> id map with frequency counts. Ids are dense and
// stable in insertion order; the five special tokens above always occupy
// ids 0..4.
class Vocabulary {
 public:
  Vocabulary();

  // Returns the id of `token`, inserting it if absent.
  int32_t AddToken(std::string_view token, int64_t count = 1);

  // Returns the id of `token`, or kUnkId if unknown. Does not insert.
  int32_t IdOf(std::string_view token) const;

  // True if `token` is present.
  bool Contains(std::string_view token) const;

  // Token string for `id`. Requires a valid id.
  const std::string& TokenOf(int32_t id) const;

  // Occurrence count recorded for `id`.
  int64_t CountOf(int32_t id) const;

  // Adds `delta` to the count of an existing token id.
  void AddCount(int32_t id, int64_t delta);

  // Removes every token with id >= `new_size` (ids are insertion-ordered,
  // so this drops the most recently added suffix). Used to roll back a
  // partially applied ingest; cannot remove the special tokens.
  void TruncateTo(size_t new_size);

  // Number of tokens including specials.
  size_t size() const { return tokens_.size(); }

  // Total count mass over non-special tokens.
  int64_t TotalCount() const;

  // Returns a vocabulary containing the special tokens plus every token
  // with count >= `min_count`, keeping at most `max_size` tokens total
  // (0 = unlimited), preferring higher counts.
  Vocabulary Pruned(int64_t min_count, size_t max_size = 0) const;

  // True for ids < kNumSpecialTokens.
  static bool IsSpecial(int32_t id) { return id < kNumSpecialTokens; }

 private:
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace stm::text

#endif  // STM_TEXT_VOCABULARY_H_
