// Thread-pool scaling bench: times the parallelized hot paths (Gemm,
// k-means, TF-IDF vectorization, MiniLm batch pooling) at the thread
// count given by STM_NUM_THREADS. Run it twice to measure scaling, e.g.
//
//   STM_NUM_THREADS=1 ./bench_parallel
//   STM_NUM_THREADS=8 ./bench_parallel
//
// Outputs one table row per workload (seconds, lower is better); with
// STM_BENCH_JSON=<path> the rows are also written as JSON for scripted
// comparison. All workloads are deterministic: the numbers produced at
// any thread count are bit-identical (see DESIGN.md, "Threading model").

#include <string>
#include <vector>

#include "bench/harness.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/matrix.h"
#include "plm/minilm.h"
#include "text/corpus.h"
#include "text/tfidf.h"

namespace stm {
namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  }
  return m;
}

double TimeGemm(const std::string& table) {
  Rng rng(7);
  const la::Matrix a = RandomMatrix(256, 256, rng);
  const la::Matrix b = RandomMatrix(256, 256, rng);
  la::Matrix c;
  bench::MethodTimer timer(table, "gemm_256");
  for (int rep = 0; rep < 20; ++rep) la::Gemm(a, b, c);
  return timer.Seconds();
}

double TimeKMeans(const std::string& table) {
  Rng rng(11);
  const la::Matrix data = RandomMatrix(4000, 32, rng);
  cluster::KMeansOptions options;
  options.k = 16;
  options.max_iters = 25;
  bench::MethodTimer timer(table, "kmeans_4000x32_k16");
  const cluster::KMeansResult result = cluster::KMeans(data, options);
  (void)result;
  return timer.Seconds();
}

double TimeTfIdf(const std::string& table) {
  Rng rng(13);
  text::Corpus corpus;
  for (int w = 0; w < 600; ++w) {
    corpus.vocab().AddToken("w" + std::to_string(w));
  }
  const size_t vocab = corpus.vocab().size();
  for (int d = 0; d < 2000; ++d) {
    text::Document doc;
    for (int t = 0; t < 80; ++t) {
      doc.tokens.push_back(static_cast<int32_t>(
          text::kNumSpecialTokens +
          rng.UniformInt(vocab - text::kNumSpecialTokens)));
    }
    corpus.docs().push_back(std::move(doc));
  }
  const text::TfIdf tfidf(corpus);
  bench::MethodTimer timer(table, "tfidf_transform_all_2000");
  for (int rep = 0; rep < 5; ++rep) {
    const auto vecs = tfidf.TransformAll(corpus);
    (void)vecs;
  }
  return timer.Seconds();
}

double TimePoolBatch(const std::string& table) {
  Rng rng(17);
  plm::MiniLmConfig config;
  config.vocab_size = 200;
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 32;
  plm::MiniLm model(config);  // random init; inference cost is identical
  std::vector<std::vector<int32_t>> docs(64);
  for (auto& doc : docs) {
    for (int t = 0; t < 32; ++t) {
      doc.push_back(static_cast<int32_t>(
          text::kNumSpecialTokens +
          rng.UniformInt(config.vocab_size - text::kNumSpecialTokens)));
    }
  }
  bench::MethodTimer timer(table, "minilm_pool_batch_64");
  const la::Matrix pooled = model.PoolBatch(docs);
  (void)pooled;
  return timer.Seconds();
}

}  // namespace
}  // namespace stm

int main() {
  using namespace stm;
  const std::string table =
      "Parallel hot paths @ " +
      std::to_string(ThreadPool::Global().threads()) + " threads";
  bench::Table out(table, {"seconds"});
  out.AddRow("gemm_256", {TimeGemm(table)});
  out.AddRow("kmeans_4000x32_k16", {TimeKMeans(table)});
  out.AddRow("tfidf_transform_all_2000", {TimeTfIdf(table)});
  out.AddRow("minilm_pool_batch_64", {TimePoolBatch(table)});
  out.Print();
  return 0;
}
