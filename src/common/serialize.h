#ifndef STM_COMMON_SERIALIZE_H_
#define STM_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace stm {

// Little-endian binary (de)serialization for the on-disk artifact caches
// (pre-trained MiniLm weights, embedding tables). Artifacts are written in
// a framed container so torn, truncated, or bit-flipped files are detected
// on load instead of silently restored:
//
//   u32 container magic "STMC"   u32 format version
//   u32 artifact magic           u32 reserved (0)
//   u64 payload size             <payload bytes>
//   u32 CRC32C(payload)
//
// Writers build the payload with BinaryWriter and publish it atomically
// via BinaryWriter::FlushToEnv; readers open with BinaryReader::OpenArtifact
// which verifies the frame and checksum before any field is decoded. See
// DESIGN.md "Error handling & durability".

inline constexpr uint32_t kContainerMagic = 0x434D5453;  // "STMC"
inline constexpr uint32_t kContainerVersion = 1;

// Frame geometry, exposed so zero-copy readers (mmap-backed shards) can
// locate the payload without materializing a copy.
inline constexpr size_t kArtifactHeaderSize =
    4 * sizeof(uint32_t) + sizeof(uint64_t);
inline constexpr size_t kArtifactTrailerSize = sizeof(uint32_t);

// Validates the container frame (magic, version, artifact magic, payload
// size, CRC32C) over in-memory bytes and returns a view of the payload —
// a view into `file_bytes`, valid only as long as the backing storage.
// kCorruptData on any mismatch; `path` is used in error messages only.
StatusOr<std::string_view> ValidateArtifactFrame(std::string_view file_bytes,
                                                 uint32_t artifact_magic,
                                                 const std::string& path);

class BinaryWriter {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteF32(float value);
  void WriteString(const std::string& value);
  void WriteFloats(const std::vector<float>& values);
  // As above over a raw span, so matrix storage can be written without an
  // intermediate vector copy.
  void WriteFloats(const float* values, size_t count);
  // Length-prefixed raw int8 array (quantized weights).
  void WriteBytes(const std::vector<int8_t>& values);
  // Length-prefixed u64 array (packed LSH sketch words).
  void WriteU64s(const std::vector<uint64_t>& values);
  // Length-prefixed i32 array (corpus token ids / labels).
  void WriteI32s(const int32_t* values, size_t count);
  void WriteI32s(const std::vector<int32_t>& values);

  const std::string& buffer() const { return buffer_; }

  // Frames buffer() (header + CRC32C trailer) and writes it atomically via
  // `env`, retrying transient failures per `retry`.
  Status FlushToEnv(Env* env, const std::string& path,
                    uint32_t artifact_magic,
                    const RetryOptions& retry = RetryOptions()) const;

  // Legacy shim: raw unframed write via std::ofstream semantics (atomic
  // underneath). Returns false on any error. Prefer FlushToEnv.
  bool Flush(const std::string& path) const;

 private:
  std::string buffer_;
};

class BinaryReader {
 public:
  // Legacy: reads a raw (unframed) file; `ok()` reports success.
  explicit BinaryReader(const std::string& path);

  // Reads `path` via `env`, validates the container frame (magic, version,
  // artifact magic, payload size, CRC32C) and returns a reader positioned
  // at the payload start. kUnavailable when the file is missing,
  // kCorruptData when the frame or checksum does not validate.
  static StatusOr<BinaryReader> OpenArtifact(Env* env,
                                             const std::string& path,
                                             uint32_t artifact_magic);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Status-returning reads. After any failure the reader stays failed and
  // every subsequent read returns the same error.
  Status Read(uint32_t* value);
  Status Read(uint64_t* value);
  Status Read(float* value);
  Status Read(std::string* value);
  Status Read(std::vector<float>* values);
  Status Read(std::vector<int8_t>* values);
  Status Read(std::vector<uint64_t>* values);
  Status Read(std::vector<int32_t>* values);

  // Value-returning shims for existing call sites; on failure they return
  // a zero value and flip ok().
  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  std::string ReadString();
  std::vector<float> ReadFloats();

  // True when every read so far stayed in bounds and the whole buffer was
  // consumed.
  bool exhausted() const { return ok() && pos_ == buffer_.size(); }

  // OK only when the reader is healthy and fully consumed; trailing bytes
  // are corruption.
  Status Finish() const;

 private:
  BinaryReader() = default;

  // Overflow-safe bounds check: fails the reader (kCorruptData) unless
  // `bytes` more bytes are available.
  bool Ensure(size_t bytes);

  std::string buffer_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace stm

#endif  // STM_COMMON_SERIALIZE_H_
