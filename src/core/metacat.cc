#include "core/metacat.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "index/ann.h"
#include "nn/feature_classifier.h"
#include "text/vocabulary.h"

namespace stm::core {

MetaCat::MetaCat(const text::Corpus& corpus, const MetaCatConfig& config)
    : corpus_(corpus), config_(config) {}

std::vector<int> MetaCat::Run(
    const std::vector<std::vector<size_t>>& labeled_docs) {
  const size_t num_classes = corpus_.num_labels();
  STM_CHECK_EQ(labeled_docs.size(), num_classes);
  Rng rng(config_.seed);

  // ---- HIN over docs, metadata, words and seed labels ----
  graph::HinBuildOptions hin_options;
  hin_options.include_words = true;
  hin_options.min_word_count = 3;
  hin_options.include_labels = true;
  for (const auto& docs : labeled_docs) {
    hin_options.labeled_docs.insert(hin_options.labeled_docs.end(),
                                    docs.begin(), docs.end());
  }
  const graph::Hin hin = graph::BuildHin(corpus_, hin_options);

  // Walks along the generative meta-paths.
  std::vector<std::vector<int>> walks;
  for (const auto& metapath :
       std::vector<std::vector<std::string>>{{"doc", "word", "doc"},
                                             {"doc", "user", "doc"},
                                             {"doc", "tag", "doc"},
                                             {"doc", "label", "doc"}}) {
    // Skip meta-paths whose middle type is absent from this corpus.
    bool has_type = false;
    for (size_t n = 0; n < hin.num_nodes() && !has_type; ++n) {
      has_type = hin.TypeOf(static_cast<int>(n)) == metapath[1];
    }
    if (!has_type) continue;
    auto more = graph::MetaPathWalks(hin, metapath, config_.walks_per_node,
                                     config_.walk_length,
                                     config_.seed + walks.size());
    walks.insert(walks.end(), more.begin(), more.end());
  }
  graph::NodeEmbeddingConfig emb_config;
  emb_config.dim = config_.embedding_dim;
  emb_config.seed = config_.seed + 7;
  const la::Matrix node_emb =
      graph::TrainNodeEmbeddings(walks, hin.num_nodes(), emb_config);

  // ---- synthetic training docs per label ----
  // Word nodes and their vocabulary ids.
  std::vector<int> word_nodes;
  std::vector<int32_t> word_ids;
  for (size_t n = 0; n < hin.num_nodes(); ++n) {
    if (hin.TypeOf(static_cast<int>(n)) == "word") {
      word_nodes.push_back(static_cast<int>(n));
      word_ids.push_back(corpus_.vocab().IdOf(hin.NameOf(static_cast<int>(n))));
    }
  }
  // Gather the word-node embeddings once; every class scores against the
  // same base, so the per-pair cosines become one similarity panel row
  // per class through the batched brute-force tier.
  la::Matrix word_mat(word_nodes.size(), node_emb.cols());
  for (size_t i = 0; i < word_nodes.size(); ++i) {
    word_mat.SetRow(i, node_emb.RowVec(static_cast<size_t>(word_nodes[i])));
  }
  std::vector<std::vector<int32_t>> synth_docs;
  std::vector<int> synth_labels;
  for (size_t c = 0; c < num_classes; ++c) {
    const int label_node = hin.NodeOf("label", corpus_.label_names()[c]);
    if (label_node < 0 || word_nodes.empty()) continue;
    // p(w | label) ∝ exp(cos(e_w, e_label) / τ).
    la::Matrix label_query(1, node_emb.cols());
    label_query.SetRow(0, node_emb.RowVec(static_cast<size_t>(label_node)));
    const la::Matrix sims = ann::SimilarityPanel(label_query, word_mat);
    std::vector<double> weights(word_nodes.size());
    for (size_t i = 0; i < word_nodes.size(); ++i) {
      weights[i] = std::exp(static_cast<double>(sims.At(0, i)) /
                            config_.word_temperature);
    }
    AliasSampler sampler(weights);
    for (size_t s = 0; s < config_.synth_docs_per_class; ++s) {
      std::vector<int32_t> doc;
      doc.reserve(config_.synth_doc_len);
      for (size_t t = 0; t < config_.synth_doc_len; ++t) {
        doc.push_back(word_ids[sampler.Sample(rng)]);
      }
      synth_docs.push_back(std::move(doc));
      synth_labels.push_back(static_cast<int>(c));
    }
  }

  // ---- features: bag of words (+ HIN doc embedding) ----
  const size_t vocab_size = corpus_.vocab().size();
  const size_t meta_dim =
      config_.use_metadata_features ? config_.embedding_dim : 0;
  const size_t feature_dim = vocab_size + meta_dim;
  auto doc_features = [&](const std::vector<int32_t>& tokens,
                          int doc_node) {
    std::vector<float> features(feature_dim, 0.0f);
    float total = 0.0f;
    for (int32_t id : tokens) {
      if (id < text::kNumSpecialTokens) continue;
      features[static_cast<size_t>(id)] += 1.0f;
      total += 1.0f;
    }
    if (total > 0.0f) {
      for (size_t j = 0; j < vocab_size; ++j) features[j] /= total;
    }
    if (meta_dim > 0 && doc_node >= 0) {
      std::vector<float> emb =
          node_emb.RowVec(static_cast<size_t>(doc_node));
      la::NormalizeInPlace(emb.data(), emb.size());
      for (size_t j = 0; j < meta_dim; ++j) {
        features[vocab_size + j] = emb[j];
      }
    }
    return features;
  };

  // Training set: labeled docs (real features incl. metadata embedding)
  // plus synthetic docs (text features only — they have no HIN node).
  std::vector<std::vector<float>> train_features;
  std::vector<int> train_labels;
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t d : labeled_docs[c]) {
      train_features.push_back(
          doc_features(corpus_.docs()[d].tokens, static_cast<int>(d)));
      train_labels.push_back(static_cast<int>(c));
    }
  }
  for (size_t s = 0; s < synth_docs.size(); ++s) {
    train_features.push_back(doc_features(synth_docs[s], -1));
    train_labels.push_back(synth_labels[s]);
  }
  STM_CHECK(!train_features.empty());

  la::Matrix train_x(train_features.size(), feature_dim);
  la::Matrix train_y(train_features.size(), num_classes);
  for (size_t i = 0; i < train_features.size(); ++i) {
    train_x.SetRow(i, train_features[i]);
    train_y.At(i, static_cast<size_t>(train_labels[i])) = 1.0f;
  }

  nn::FeatureMlpClassifier::Config clf_config;
  clf_config.input_dim = feature_dim;
  clf_config.num_classes = num_classes;
  clf_config.hidden = 48;
  clf_config.seed = config_.seed + 11;
  nn::FeatureMlpClassifier classifier(clf_config);
  for (int epoch = 0; epoch < config_.classifier_epochs; ++epoch) {
    classifier.TrainEpoch(train_x, train_y);
  }

  la::Matrix all_x(corpus_.num_docs(), feature_dim);
  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    all_x.SetRow(d, doc_features(corpus_.docs()[d].tokens,
                                 static_cast<int>(d)));
  }
  return classifier.Predict(all_x);
}

}  // namespace stm::core
