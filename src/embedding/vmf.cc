#include "embedding/vmf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "la/matrix.h"

namespace stm::embedding {

VonMisesFisher::VonMisesFisher(std::vector<float> mu, float kappa)
    : mu_(std::move(mu)), kappa_(kappa) {
  STM_CHECK(!mu_.empty());
  STM_CHECK_GE(kappa_, 0.0f);
  la::NormalizeInPlace(mu_.data(), mu_.size());
}

VonMisesFisher VonMisesFisher::Fit(
    const std::vector<std::vector<float>>& units, float fallback_kappa) {
  STM_CHECK(!units.empty());
  const size_t d = units[0].size();
  std::vector<float> mean(d, 0.0f);
  for (const auto& u : units) {
    STM_CHECK_EQ(u.size(), d);
    la::Axpy(1.0f, u.data(), mean.data(), d);
  }
  la::ScaleInPlace(mean.data(), d, 1.0f / static_cast<float>(units.size()));
  const float rbar = la::Norm(mean.data(), d);
  float kappa = fallback_kappa;
  if (units.size() > 1 && rbar > 1e-6f && rbar < 0.9999f) {
    // Banerjee et al.: kappa ≈ rbar (d - rbar^2) / (1 - rbar^2).
    kappa = rbar * (static_cast<float>(d) - rbar * rbar) /
            (1.0f - rbar * rbar);
    // Nearly collinear seeds produce unboundedly large estimates; cap so
    // sampled directions keep some diversity (and stay numerically sane).
    kappa = std::min(kappa, 300.0f);
  }
  return VonMisesFisher(std::move(mean), kappa);
}

std::vector<float> VonMisesFisher::Sample(Rng& rng) const {
  const size_t d = mu_.size();
  if (kappa_ < 1e-6f || d == 1) {
    // Uniform on the sphere (or trivial 1-D case).
    std::vector<float> v(d);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    la::NormalizeInPlace(v.data(), d);
    return v;
  }

  // Wood (1994): sample w along mu, then a uniform tangent direction.
  const double dim = static_cast<double>(d);
  const double kappa = static_cast<double>(kappa_);
  const double b =
      (-2.0 * kappa + std::sqrt(4.0 * kappa * kappa + (dim - 1.0) * (dim - 1.0))) /
      (dim - 1.0);
  const double x0 = (1.0 - b) / (1.0 + b);
  const double c =
      kappa * x0 + (dim - 1.0) * std::log(1.0 - x0 * x0);

  double w = 1.0;  // large-kappa limit if rejection somehow exhausts
  const double a = (dim - 1.0) / 2.0;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double z = rng.Beta(a, a);
    const double candidate =
        (1.0 - (1.0 + b) * z) / (1.0 - (1.0 - b) * z);
    const double u = rng.Uniform();
    if (kappa * candidate + (dim - 1.0) * std::log(1.0 - x0 * candidate) -
            c >=
        std::log(u + 1e-300)) {
      w = candidate;
      break;
    }
  }

  // Uniform direction orthogonal to mu.
  std::vector<float> v(d);
  for (float& x : v) x = static_cast<float>(rng.Normal());
  const float proj = la::Dot(v.data(), mu_.data(), d);
  la::Axpy(-proj, mu_.data(), v.data(), d);
  la::NormalizeInPlace(v.data(), d);

  std::vector<float> sample(d);
  const float wf = static_cast<float>(w);
  const float tangent = std::sqrt(std::max(0.0f, 1.0f - wf * wf));
  for (size_t j = 0; j < d; ++j) {
    sample[j] = wf * mu_[j] + tangent * v[j];
  }
  la::NormalizeInPlace(sample.data(), d);
  return sample;
}

}  // namespace stm::embedding
