// Determinism contract of the thread pool (see DESIGN.md, "Threading
// model"): every parallelized path must produce bit-identical output at
// any thread count. Each equivalence test computes a baseline on the
// forced-serial pool (1 thread), then recomputes on 2- and 8-thread pools
// and compares exactly — no tolerances.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/xclass.h"
#include "datasets/specs.h"
#include "datasets/synthetic.h"
#include "la/matrix.h"
#include "plm/minilm.h"
#include "plm/pair_scorer.h"
#include "text/corpus.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

constexpr size_t kThreadCounts[] = {2, 8};

// Restores the pool to its environment-configured size after each test so
// the rest of the suite is unaffected by Reset() calls made here.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

void ExpectSameMatrix(const la::Matrix& a, const la::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

la::Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  }
  return m;
}

// ---- pool mechanics ----

TEST_F(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool::Reset(8);
  std::vector<int> hits(1000, 0);
  ParallelFor(0, hits.size(), 7, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelTest, ZeroLengthRangeIsNoOp) {
  ThreadPool::Reset(8);
  bool called = false;
  ParallelFor(5, 5, 4, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(ParallelChunkCount(5, 5, 4), 0u);
}

TEST_F(ParallelTest, ChunkBoundariesIgnoreThreadCount) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool::Reset(threads);
    std::vector<std::pair<size_t, size_t>> chunks(
        ParallelChunkCount(3, 50, 9));
    ParallelForChunks(3, 50, 9, [&](size_t index, size_t b, size_t e) {
      chunks[index] = {b, e};
    });
    size_t expect_begin = 3;
    for (const auto& [b, e] : chunks) {
      EXPECT_EQ(b, expect_begin);
      EXPECT_LE(e - b, 9u);
      expect_begin = e;
    }
    EXPECT_EQ(expect_begin, 50u);
  }
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  ThreadPool::Reset(8);
  std::vector<int> sums(64, 0);
  ParallelFor(0, sums.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      // Nested region: must execute inline on the worker, not deadlock.
      int local = 0;
      ParallelFor(0, 10, 3, [&](size_t nb, size_t ne) {
        for (size_t j = nb; j < ne; ++j) local += static_cast<int>(j);
      });
      sums[i] = local;
    }
  });
  for (int s : sums) EXPECT_EQ(s, 45);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  ThreadPool::Reset(8);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](size_t b, size_t) {
                    if (b == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must still be usable after the failed region.
  std::vector<int> hits(10, 0);
  ParallelFor(0, hits.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelTest, ParallelReduceIsChunkOrdered) {
  // Left-to-right combine over string partials exposes any reordering.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool::Reset(threads);
    const std::string folded = ParallelReduce(
        0, 10, 3, std::string(),
        [](size_t b, size_t e) {
          std::string s;
          for (size_t i = b; i < e; ++i) s += std::to_string(i);
          return s;
        },
        [](std::string acc, std::string part) { return acc + part; });
    EXPECT_EQ(folded, "0123456789");
  }
}

// ---- hot-path equivalence ----

TEST_F(ParallelTest, GemmMatchesSerial) {
  Rng rng(3);
  const la::Matrix a = RandomMatrix(33, 17, rng);
  const la::Matrix b = RandomMatrix(17, 29, rng);
  const la::Matrix bt = RandomMatrix(29, 17, rng);
  const la::Matrix at = RandomMatrix(17, 33, rng);

  ThreadPool::Reset(1);
  la::Matrix c1, ct1, cat1;
  la::Gemm(a, b, c1);
  la::GemmBt(a, bt, ct1);
  la::GemmAt(at, b, cat1);

  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    la::Matrix c, ct, cat;
    la::Gemm(a, b, c);
    la::GemmBt(a, bt, ct);
    la::GemmAt(at, b, cat);
    ExpectSameMatrix(c1, c);
    ExpectSameMatrix(ct1, ct);
    ExpectSameMatrix(cat1, cat);
  }
}

TEST_F(ParallelTest, GemmAccumulateMatchesSerial) {
  Rng rng(5);
  const la::Matrix a = RandomMatrix(640, 3, rng);  // forces several chunks
  const la::Matrix b = RandomMatrix(3, 4, rng);
  ThreadPool::Reset(1);
  la::Matrix c1(640, 4, 0.5f);
  la::Gemm(a, b, c1, /*accumulate=*/true);
  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    la::Matrix c(640, 4, 0.5f);
    la::Gemm(a, b, c, /*accumulate=*/true);
    ExpectSameMatrix(c1, c);
  }
}

TEST_F(ParallelTest, KMeansMatchesSerial) {
  Rng rng(7);
  const la::Matrix data = RandomMatrix(700, 8, rng);
  cluster::KMeansOptions options;
  options.k = 6;
  options.max_iters = 30;

  ThreadPool::Reset(1);
  const cluster::KMeansResult base = cluster::KMeans(data, options);

  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    const cluster::KMeansResult result = cluster::KMeans(data, options);
    EXPECT_EQ(base.assignment, result.assignment);
    EXPECT_EQ(base.inertia, result.inertia);
    ExpectSameMatrix(base.centroids, result.centroids);
  }
}

TEST_F(ParallelTest, SilhouetteMatchesSerial) {
  Rng rng(9);
  const la::Matrix data = RandomMatrix(300, 4, rng);
  std::vector<int> assignment(300);
  for (size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<int>(i % 3);
  }
  ThreadPool::Reset(1);
  const double base = cluster::Silhouette(data, assignment, 3, 120);
  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    EXPECT_EQ(base, cluster::Silhouette(data, assignment, 3, 120));
  }
}

text::Corpus SmallCorpus() {
  Rng rng(11);
  text::Corpus corpus;
  for (int w = 0; w < 40; ++w) {
    corpus.vocab().AddToken("w" + std::to_string(w));
  }
  const size_t vocab = corpus.vocab().size();
  for (int d = 0; d < 60; ++d) {
    text::Document doc;
    const size_t len = 3 + rng.UniformInt(20);
    for (size_t t = 0; t < len; ++t) {
      doc.tokens.push_back(static_cast<int32_t>(
          text::kNumSpecialTokens +
          rng.UniformInt(vocab - text::kNumSpecialTokens)));
    }
    corpus.docs().push_back(std::move(doc));
  }
  return corpus;
}

TEST_F(ParallelTest, TfIdfTransformAllMatchesSerial) {
  const text::Corpus corpus = SmallCorpus();
  const text::TfIdf tfidf(corpus);

  ThreadPool::Reset(1);
  const std::vector<text::SparseVector> base = tfidf.TransformAll(corpus);

  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    const std::vector<text::SparseVector> vecs = tfidf.TransformAll(corpus);
    ASSERT_EQ(base.size(), vecs.size());
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].ids, vecs[i].ids);
      EXPECT_EQ(base[i].weights, vecs[i].weights);
    }
  }
}

TEST_F(ParallelTest, MiniLmBatchEncodingMatchesSerial) {
  plm::MiniLmConfig config;
  config.vocab_size = 60;
  config.dim = 16;
  config.layers = 1;
  config.heads = 2;
  config.ffn_dim = 32;
  config.max_seq = 12;
  plm::MiniLm model(config);  // random init is fine for equivalence

  Rng rng(13);
  std::vector<std::vector<int32_t>> docs(17);
  for (auto& doc : docs) {
    const size_t len = 1 + rng.UniformInt(12);
    for (size_t t = 0; t < len; ++t) {
      doc.push_back(static_cast<int32_t>(
          text::kNumSpecialTokens +
          rng.UniformInt(config.vocab_size - text::kNumSpecialTokens)));
    }
  }

  ThreadPool::Reset(1);
  std::vector<la::Matrix> base_encoded;
  for (const auto& doc : docs) base_encoded.push_back(model.Encode(doc));
  la::Matrix base_pooled(docs.size(), config.dim);
  for (size_t i = 0; i < docs.size(); ++i) {
    base_pooled.SetRow(i, model.Pool(docs[i]));
  }

  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    const std::vector<la::Matrix> encoded = model.EncodeBatch(docs);
    ASSERT_EQ(encoded.size(), base_encoded.size());
    for (size_t i = 0; i < encoded.size(); ++i) {
      ExpectSameMatrix(base_encoded[i], encoded[i]);
    }
    ExpectSameMatrix(base_pooled, model.PoolBatch(docs));
  }
}

TEST_F(ParallelTest, MiniLmEncodeBatchReusesWorkspaceDeterministically) {
  // Consecutive EncodeBatch calls recycle Node buffers through the
  // thread-local la::Workspace; reuse must never leak state between
  // calls, so a second pass is bit-identical to the first at every
  // thread count.
  plm::MiniLmConfig config;
  config.vocab_size = 60;
  config.dim = 16;
  config.layers = 2;
  config.heads = 2;
  config.ffn_dim = 32;
  config.max_seq = 12;
  plm::MiniLm model(config);

  Rng rng(29);
  std::vector<std::vector<int32_t>> docs(9);
  for (auto& doc : docs) {
    const size_t len = 1 + rng.UniformInt(12);
    for (size_t t = 0; t < len; ++t) {
      doc.push_back(static_cast<int32_t>(
          text::kNumSpecialTokens +
          rng.UniformInt(config.vocab_size - text::kNumSpecialTokens)));
    }
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool::Reset(threads);
    const std::vector<la::Matrix> first = model.EncodeBatch(docs);
    const std::vector<la::Matrix> second = model.EncodeBatch(docs);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      ExpectSameMatrix(first[i], second[i]);
    }
  }
}

TEST_F(ParallelTest, XClassFullRunMatchesSerial) {
  // End-to-end pin for the determinism contract: the whole X-Class
  // pipeline (batch encoding through the packed GEMMs, PCA, GMM
  // alignment, final classifier) must produce bit-identical document
  // representations and identical predictions at any thread count.
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(33);
  spec.num_docs = 60;
  spec.pretrain_docs = 1;
  spec.background_vocab = 120;
  const datasets::SyntheticDataset data = datasets::Generate(spec);

  plm::MiniLmConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.dim = 16;
  config.layers = 1;
  config.heads = 2;
  config.ffn_dim = 32;
  config.max_seq = 24;
  plm::MiniLm model(config);  // random init is fine for equivalence

  ThreadPool::Reset(1);
  core::XClassConfig xconfig;
  core::XClass base(data.corpus, &model, xconfig);
  const std::vector<int> base_pred = base.Run(data.leaf_name_tokens);
  const la::Matrix base_reps = base.doc_reps();

  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    core::XClass method(data.corpus, &model, xconfig);
    const std::vector<int> pred = method.Run(data.leaf_name_tokens);
    EXPECT_EQ(base_pred, pred);
    ExpectSameMatrix(base_reps, method.doc_reps());
  }
}

TEST_F(ParallelTest, PairScorerScoreBatchMatchesSerial) {
  plm::PairScorer::Config config;
  config.encoder_dim = 12;
  config.epochs = 1;
  plm::PairScorer scorer(config);

  Rng rng(17);
  std::vector<std::vector<float>> u(25), v(25);
  for (size_t i = 0; i < u.size(); ++i) {
    for (size_t j = 0; j < config.encoder_dim; ++j) {
      u[i].push_back(static_cast<float>(rng.Uniform()));
      v[i].push_back(static_cast<float>(rng.Uniform()));
    }
  }

  ThreadPool::Reset(1);
  std::vector<float> base;
  for (size_t i = 0; i < u.size(); ++i) base.push_back(scorer.Score(u[i], v[i]));

  for (size_t threads : kThreadCounts) {
    ThreadPool::Reset(threads);
    EXPECT_EQ(base, scorer.ScoreBatch(u, v));
  }
}

}  // namespace
}  // namespace stm
