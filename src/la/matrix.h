#ifndef STM_LA_MATRIX_H_
#define STM_LA_MATRIX_H_

#include <cstddef>
#include <vector>

namespace stm::la {

// Dense row-major float matrix. This is the storage type shared by the
// embedding tables, classifier features and PLM activations. It is a plain
// value type: copyable, movable, no hidden state.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* Row(size_t r);
  const float* Row(size_t r) const;

  float& At(size_t r, size_t c);
  float At(size_t r, size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Reshapes in place; total element count must be preserved.
  void Reshape(size_t rows, size_t cols);

  // Sets every element to `value`.
  void Fill(float value);

  // Returns a copy of row `r` as a vector.
  std::vector<float> RowVec(size_t r) const;

  // Overwrites row `r` with `values` (must have `cols()` entries).
  void SetRow(size_t r, const std::vector<float>& values);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- vector kernels (contiguous float spans) ----

// out := a . b over n elements.
float Dot(const float* a, const float* b, size_t n);

// Euclidean norm.
float Norm(const float* a, size_t n);

// a := a / ||a|| (no-op on the zero vector).
void NormalizeInPlace(float* a, size_t n);

// y := y + alpha * x.
void Axpy(float alpha, const float* x, float* y, size_t n);

// a := a * s.
void ScaleInPlace(float* a, size_t n, float s);

// Cosine similarity; returns 0 when either vector is zero.
float Cosine(const float* a, const float* b, size_t n);
float Cosine(const std::vector<float>& a, const std::vector<float>& b);

// Elementwise mean of a set of vectors (all length n). Empty set -> zeros.
std::vector<float> MeanOf(const std::vector<const float*>& vecs, size_t n);

// ---- raw matmul kernels (row-major, accumulate into c) ----
//
// Shared by the Matrix wrappers below and by the nn autograd matmul ops,
// so the whole library funnels through one set of (parallel) inner loops.
// All three run row-blocked on the global thread pool; the blocking
// depends only on the shapes and the per-element accumulation order is
// fixed, so output is bit-identical for any STM_NUM_THREADS.

// c[m, n] += a[m, k] * b[k, n].
void GemmAcc(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n);

// c[m, n] += a[m, k] * b[n, k]^T.
void GemmBtAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n);

// c[m, n] += a[k, m]^T * b[k, n].
void GemmAtAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n);

// ---- matrix kernels ----

// c := a * b (plus accumulate if `accumulate`). a: m x k, b: k x n,
// c: m x n. Loop order tuned for row-major operands.
void Gemm(const Matrix& a, const Matrix& b, Matrix& c,
          bool accumulate = false);

// c := a * b^T. a: m x k, b: n x k, c: m x n.
void GemmBt(const Matrix& a, const Matrix& b, Matrix& c,
            bool accumulate = false);

// c := a^T * b. a: k x m, b: k x n, c: m x n.
void GemmAt(const Matrix& a, const Matrix& b, Matrix& c,
            bool accumulate = false);

// Normalizes every row of `m` to unit length.
void NormalizeRows(Matrix& m);

// ---- PCA ----

// Projects `data` (n x d) onto its top `k` principal components.
// Returns an n x k matrix. Components are found by EVD of the covariance
// via orthogonal power iteration (sufficient for the k<=4 uses here).
Matrix Pca(const Matrix& data, size_t k, int power_iters = 100);

}  // namespace stm::la

#endif  // STM_LA_MATRIX_H_
