#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/metacat.h"
#include "core/micol.h"
#include "core/promptclass.h"
#include "core/taxoclass.h"
#include "core/weshclass.h"
#include "datasets/specs.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "graph/hin.h"
#include "text/tokenizer.h"

namespace stm::core {
namespace {

using stm::SplitWhitespace;

// ---------- PromptClass ----------

struct PromptWorld {
  datasets::SyntheticDataset data;
  std::unique_ptr<plm::MiniLm> model;
};

PromptWorld MakePromptWorld() {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(33);
  spec.num_docs = 200;
  spec.pretrain_docs = 700;
  spec.background_vocab = 300;
  PromptWorld world;
  world.data = datasets::Generate(spec);
  plm::MiniLmConfig config;
  config.vocab_size = world.data.corpus.vocab().size();
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 40;
  plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  pretrain.batch = 8;
  world.model = plm::MiniLm::LoadOrPretrain(
      testing::TempDir(), world.data.fingerprint, config, pretrain,
      world.data.pretrain_docs);
  return world;
}

TEST(PromptClassTest, MlmZeroShotAboveChance) {
  PromptWorld world = MakePromptWorld();
  PromptClassConfig config;
  PromptClass method(world.data.corpus, world.model.get(), config);
  const la::Matrix scores = method.ZeroShotScores(
      world.data.leaf_name_tokens, PromptStyle::kMlm);
  std::vector<int> pred(world.data.corpus.num_docs());
  for (size_t d = 0; d < pred.size(); ++d) {
    const float* row = scores.Row(d);
    pred[d] = static_cast<int>(
        std::max_element(row, row + scores.cols()) - row);
  }
  EXPECT_GT(eval::Accuracy(pred, world.data.corpus.GoldLabels()), 0.4);
}

TEST(PromptClassTest, FullPipelineBeatsZeroShot) {
  PromptWorld world = MakePromptWorld();
  PromptClassConfig config;
  config.prompt = PromptStyle::kMlm;
  PromptClass method(world.data.corpus, world.model.get(), config);
  const auto gold = world.data.corpus.GoldLabels();

  const la::Matrix scores = method.ZeroShotScores(
      world.data.leaf_name_tokens, PromptStyle::kMlm);
  std::vector<int> zero_shot(world.data.corpus.num_docs());
  for (size_t d = 0; d < zero_shot.size(); ++d) {
    const float* row = scores.Row(d);
    zero_shot[d] = static_cast<int>(
        std::max_element(row, row + scores.cols()) - row);
  }
  const auto full = method.Run(world.data.leaf_name_tokens);
  EXPECT_GE(eval::Accuracy(full, gold) + 0.03,
            eval::Accuracy(zero_shot, gold));
  EXPECT_GT(eval::Accuracy(full, gold), 0.5);
}

TEST(PromptClassTest, RtdZeroShotProducesScores) {
  PromptWorld world = MakePromptWorld();
  PromptClassConfig config;
  PromptClass method(world.data.corpus, world.model.get(), config);
  const la::Matrix scores = method.ZeroShotScores(
      world.data.leaf_name_tokens, PromptStyle::kRtd);
  ASSERT_EQ(scores.rows(), world.data.corpus.num_docs());
  // Scores are z-calibrated per class: every class column has ~zero mean
  // and unit variance.
  for (size_t c = 0; c < scores.cols(); ++c) {
    double mean = 0.0;
    for (size_t d = 0; d < scores.rows(); ++d) mean += scores.At(d, c);
    EXPECT_NEAR(mean / scores.rows(), 0.0, 1e-4);
  }
}

// ---------- WeSHClass ----------

TEST(WeshClassTest, HierarchicalPathsBeatChance) {
  datasets::SyntheticSpec spec = datasets::ArxivSpec(44);
  spec.num_docs = 300;
  spec.pretrain_docs = 0;
  auto data = datasets::Generate(spec);

  // Node keywords = name tokens.
  std::vector<std::vector<int32_t>> keywords(data.tree.size());
  for (size_t n = 0; n < data.tree.size(); ++n) {
    for (const auto& part : SplitWhitespace(data.tree.NameOf(
             static_cast<int>(n)))) {
      keywords[n].push_back(data.corpus.vocab().IdOf(part));
    }
  }
  WeshClassConfig config;
  config.classifier = "bow";
  config.pretrain_epochs = 6;
  config.self_train.max_iters = 2;
  WeshClass method(data.corpus, data.tree, keywords, config);
  const auto paths = method.Run();
  ASSERT_EQ(paths.size(), data.corpus.num_docs());

  // Level-0 (coarse) and level-1 (leaf) accuracy.
  size_t coarse_correct = 0;
  size_t fine_correct = 0;
  for (size_t d = 0; d < paths.size(); ++d) {
    ASSERT_EQ(paths[d].size(), 2u);
    coarse_correct +=
        paths[d][0] == data.corpus.docs()[d].label_path[0];
    fine_correct += paths[d][1] == data.corpus.docs()[d].label_path[1];
  }
  const double coarse_acc =
      static_cast<double>(coarse_correct) / paths.size();
  const double fine_acc = static_cast<double>(fine_correct) / paths.size();
  EXPECT_GT(coarse_acc, 0.6);   // 3 coarse classes, chance = 1/3
  EXPECT_GT(fine_acc, 0.35);    // 9 leaves, chance = 1/9
  EXPECT_GE(coarse_acc, fine_acc);
}

TEST(WeshClassTest, LeafOfExtractsLastNode) {
  EXPECT_EQ(WeshClass::LeafOf({{0, 3}, {1, 5}}),
            (std::vector<int>{3, 5}));
}

// ---------- TaxoClass ----------

TEST(TaxoClassTest, MultiLabelBeatsFrequencyPrior) {
  datasets::SyntheticSpec spec = datasets::AmazonTaxoSpec(55);
  spec.num_docs = 200;
  spec.pretrain_docs = 600;
  spec.num_aux_topics = 6;
  spec.aux_docs_per_topic = 30;
  auto data = datasets::Generate(spec);

  plm::MiniLmConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 40;
  plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  pretrain.batch = 8;
  auto model = plm::MiniLm::LoadOrPretrain(
      testing::TempDir(), data.fingerprint, config, pretrain,
      data.pretrain_docs);

  auto relevance = TrainRelevanceModel(model.get(), data.aux_docs,
                                       data.aux_labels,
                                       data.aux_topic_name_tokens, 3);

  std::vector<std::vector<int32_t>> node_names(data.tree.size());
  for (size_t n = 0; n < data.tree.size(); ++n) {
    for (const auto& part :
         SplitWhitespace(data.tree.NameOf(static_cast<int>(n)))) {
      node_names[n].push_back(data.corpus.vocab().IdOf(part));
    }
  }
  TaxoClassConfig taxo_config;
  TaxoClass method(data.corpus, data.tree, model.get(), relevance.get(),
                   taxo_config);
  const auto result = method.Run(node_names);

  // Gold label sets closed under ancestors.
  std::vector<std::vector<int>> gold;
  for (const auto& doc : data.corpus.docs()) {
    gold.push_back(data.tree.ClosureOf(doc.labels));
  }
  const double f1 = eval::ExampleF1(result.predicted, gold);
  const double p1 = eval::PrecisionAtK(result.ranked, gold, 1);
  EXPECT_GT(f1, 0.22);
  EXPECT_GT(p1, 0.45);
  // Candidates shrank the search space.
  size_t total_candidates = 0;
  for (const auto& c : method.candidates()) total_candidates += c.size();
  EXPECT_LT(total_candidates,
            data.corpus.num_docs() * data.tree.size());
}

// ---------- MetaCat ----------

TEST(MetaCatTest, MetadataBeatsTextOnlyOnWeakTextCorpus) {
  datasets::SyntheticSpec spec = datasets::GithubBioSpec(66);
  spec.num_docs = 220;
  spec.pretrain_docs = 0;
  auto data = datasets::Generate(spec);
  const auto labeled = datasets::SampleLabeledDocs(data.corpus, 6, 5);

  MetaCatConfig with;
  with.seed = 9;
  MetaCatConfig without = with;
  without.use_metadata_features = false;
  MetaCat m1(data.corpus, with);
  MetaCat m2(data.corpus, without);
  const auto gold = data.corpus.GoldLabels();
  const double f1_meta = eval::MicroF1(m1.Run(labeled), gold,
                                       data.corpus.num_labels());
  const double f1_text = eval::MicroF1(m2.Run(labeled), gold,
                                       data.corpus.num_labels());
  EXPECT_GT(f1_meta, 0.3);
  EXPECT_GE(f1_meta + 0.05, f1_text);
}

// ---------- MICoL ----------

TEST(MicolTest, MetadataPairsBeatRandomRanking) {
  datasets::SyntheticSpec spec = datasets::MagCsSpec(77);
  spec.num_docs = 180;
  spec.pretrain_docs = 500;
  auto data = datasets::Generate(spec);

  plm::MiniLmConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 40;
  plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  pretrain.batch = 8;
  auto model = plm::MiniLm::LoadOrPretrain(
      testing::TempDir(), data.fingerprint, config, pretrain,
      data.pretrain_docs);

  // Label texts = name + description tokens (leaf classes only).
  std::vector<std::vector<int32_t>> label_texts;
  for (size_t l = 0; l < data.leaf_classes.size(); ++l) {
    label_texts.push_back(text::Tokenizer::Encode(
        data.label_descriptions[l], data.corpus.vocab()));
  }
  // Gold leaf labels as indices into leaf order.
  std::vector<std::vector<int>> gold(data.corpus.num_docs());
  for (size_t d = 0; d < data.corpus.num_docs(); ++d) {
    for (int label : data.corpus.docs()[d].labels) {
      const auto it = std::find(data.leaf_classes.begin(),
                                data.leaf_classes.end(), label);
      if (it != data.leaf_classes.end()) {
        gold[d].push_back(
            static_cast<int>(it - data.leaf_classes.begin()));
      }
    }
  }

  MicolConfig micol_config;
  micol_config.bi_encoder_steps = 300;
  Micol micol(data.corpus, model.get(), micol_config);
  const auto zero = micol.RankByBiEncoder(label_texts);
  const double p1_zero = eval::PrecisionAtK(zero, gold, 1);

  const auto pairs =
      graph::MinePairs(data.corpus, "P->P<-P", 400, 7);
  ASSERT_GT(pairs.size(), 30u);
  micol.FineTuneBiEncoder(pairs);
  const auto tuned = micol.RankByBiEncoder(label_texts);
  const double p1_tuned = eval::PrecisionAtK(tuned, gold, 1);

  // The evaluation domain is out-of-distribution for the pre-trained
  // encoder, so metadata-induced contrastive fine-tuning must help — the
  // paper's central claim.
  const double chance = 1.0 / static_cast<double>(label_texts.size());
  EXPECT_GT(p1_tuned, chance * 3);
  EXPECT_GT(p1_tuned, p1_zero);
}

TEST(MicolTest, AugmentationsPreserveLengthApproximately) {
  Rng rng(5);
  std::vector<int32_t> tokens(40, 7);
  const auto eda = AugmentEda(tokens, rng);
  EXPECT_GT(eda.size(), 20u);
  EXPECT_LE(eda.size(), 40u);
  std::vector<double> unigram(10, 1.0);
  const auto uda = AugmentUda(tokens, unigram, rng);
  EXPECT_EQ(uda.size(), 40u);
  size_t changed = 0;
  for (int32_t id : uda) changed += id != 7;
  EXPECT_GT(changed, 0u);
}

}  // namespace
}  // namespace stm::core
