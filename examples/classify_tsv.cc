// Command-line classifier for user-supplied TSV corpora.
//
// Usage:
//   ./example_classify_tsv <corpus.tsv> [method] [seed-words...]
//
// The TSV format is one document per line:
//   <label>\t<raw text>[\t<meta>=<value> ...]
// Labels in the file are used only for evaluation; classification runs from
// category names (and any extra seed words given on the command line as
// "label:word" pairs).
//
// method: westclass (default) | ir | dataless
//
// With no arguments, writes a demo corpus to /tmp/stm_demo.tsv and runs on
// it, so the example is executable out of the box.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/baselines.h"
#include "core/westclass.h"
#include "datasets/specs.h"
#include "embedding/sgns.h"
#include "eval/metrics.h"
#include "text/corpus_io.h"

namespace {

std::string WriteDemoCorpus() {
  stm::datasets::SyntheticSpec spec = stm::datasets::AgNewsSpec(17);
  spec.num_docs = 200;
  spec.pretrain_docs = 0;
  const auto data = stm::datasets::Generate(spec);
  const std::string path = "/tmp/stm_demo.tsv";
  const stm::Status saved =
      stm::text::SaveTsv(stm::Env::Default(), data.corpus, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot write demo corpus: %s\n",
                 saved.ToString().c_str());
    std::exit(1);
  }
  std::printf("(no corpus given; wrote a demo corpus to %s)\n",
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : WriteDemoCorpus();
  const std::string method = argc > 2 ? argv[2] : "westclass";

  stm::text::Corpus corpus;
  stm::text::TsvReadReport report;
  const stm::Status loaded =
      stm::text::LoadTsv(stm::Env::Default(), path, &corpus, &report);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 loaded.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu documents, %zu classes, vocab %zu (%zu lines "
              "skipped)\n",
              corpus.num_docs(), corpus.num_labels(),
              corpus.vocab().size(), report.skipped);
  for (size_t line : report.skipped_lines) {
    std::fprintf(stderr, "  skipped malformed line %zu\n", line);
  }
  if (corpus.num_docs() == 0 || corpus.num_labels() < 2) {
    std::fprintf(stderr, "need at least 2 classes and 1 document\n");
    return 1;
  }

  // Seeds: each class name token, plus optional "label:word" extras.
  stm::text::WeakSupervision supervision;
  supervision.class_keywords.resize(corpus.num_labels());
  for (size_t c = 0; c < corpus.num_labels(); ++c) {
    for (const std::string& part :
         stm::SplitWhitespace(corpus.label_names()[c])) {
      supervision.class_keywords[c].push_back(corpus.vocab().IdOf(part));
    }
  }
  for (int a = 3; a < argc; ++a) {
    const auto parts = stm::Split(argv[a], ':');
    if (parts.size() != 2) continue;
    for (size_t c = 0; c < corpus.num_labels(); ++c) {
      if (corpus.label_names()[c] == parts[0]) {
        supervision.class_keywords[c].push_back(
            corpus.vocab().IdOf(parts[1]));
      }
    }
  }

  std::vector<int> predictions;
  if (method == "ir") {
    predictions =
        stm::core::IrTfIdfClassify(corpus, supervision.class_keywords);
  } else if (method == "dataless") {
    std::vector<std::vector<int32_t>> docs;
    for (const auto& doc : corpus.docs()) docs.push_back(doc.tokens);
    stm::embedding::SgnsConfig sgns;
    sgns.epochs = 6;
    const auto embeddings = stm::embedding::WordEmbeddings::Train(
        docs, corpus.vocab().size(), sgns);
    predictions = stm::core::EmbeddingSimilarityClassify(
        corpus, embeddings, supervision.class_keywords);
  } else {
    stm::core::WestClassConfig config;
    config.classifier = "bow";
    stm::core::WestClass runner(corpus, config);
    predictions =
        runner.Run(stm::core::Supervision::kKeywords, supervision);
  }

  const auto gold = corpus.GoldLabels();
  std::printf("%s accuracy: %.3f  macro-F1: %.3f\n", method.c_str(),
              stm::eval::Accuracy(predictions, gold),
              stm::eval::MacroF1(predictions, gold, corpus.num_labels()));
  return 0;
}
