#ifndef STM_TEXT_CORPUS_H_
#define STM_TEXT_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "text/vocabulary.h"

namespace stm::text {

// One text unit: a token-id sequence plus gold labels and optional
// metadata. Labels index into the owning corpus' `label_names`. Multi-label
// documents carry several labels; hierarchical datasets store the full
// root-to-leaf path in `label_path`.
struct Document {
  std::vector<int32_t> tokens;

  // Gold labels (indices into Corpus::label_names). Single-label docs have
  // exactly one entry.
  std::vector<int> labels;

  // For hierarchical datasets: gold label path from root (coarse) to leaf
  // (fine). Empty for flat datasets.
  std::vector<int> label_path;

  // Metadata attributes, e.g. {"user": ["u12"], "tag": ["t3", "t7"]}.
  // Keys are metadata type names; values are node identifiers.
  std::map<std::string, std::vector<std::string>> metadata;

  // Convenience: the single gold label; requires exactly one.
  int Label() const;
};

// Zero-copy view of one document's token ids and gold labels. The spans
// point into storage owned by the reader (an in-RAM Document or a mapped
// shard payload) and stay valid until the enclosing VisitShard call
// returns.
struct DocView {
  const int32_t* tokens = nullptr;
  size_t num_tokens = 0;
  const int32_t* labels = nullptr;
  size_t num_labels = 0;
};

// Read-side corpus abstraction shared by the in-RAM `Corpus` and the
// on-disk `ShardedCorpus` (text/corpus_store.h). Consumers that stream —
// TF-IDF, SGNS, the encode loop, ANN build — accept a CorpusReader and
// pull one shard at a time; an in-RAM corpus is simply a store with a
// single shard. Documents have stable global indices [0, num_docs) laid
// out contiguously across shards in shard order, so streaming passes
// visit exactly the same documents in exactly the same order as in-RAM
// passes — the root of the bit-identity guarantee.
class CorpusReader {
 public:
  virtual ~CorpusReader() = default;

  virtual size_t num_docs() const = 0;
  virtual const Vocabulary& vocab() const = 0;
  virtual const std::vector<std::string>& label_names() const = 0;

  virtual size_t num_shards() const = 0;

  // Global doc-index range [begin, end) held by `shard`.
  virtual std::pair<size_t, size_t> ShardDocRange(size_t shard) const = 0;

  // Visits every document of `shard` in ascending global index order.
  // The DocView spans stay valid only until VisitShard returns (the
  // shard's backing storage is pinned for the call, then dropped), so a
  // callback must consume or copy what it needs before returning control.
  virtual Status VisitShard(
      size_t shard,
      const std::function<void(size_t doc, const DocView&)>& fn) const = 0;

  // Document frequency of every token id (number of docs containing it).
  // Integer counts, so any sharding sums to identical values.
  virtual std::vector<int32_t> DocumentFrequencies() const = 0;

  // Corpus-wide token occurrence counts. Integer counts, as above.
  virtual std::vector<int64_t> TokenCounts() const = 0;

  // Visits every shard in order; stops at the first failing shard.
  Status VisitAll(
      const std::function<void(size_t doc, const DocView&)>& fn) const;
};

// A corpus: shared vocabulary, label space and documents. Weakly-supervised
// methods receive the corpus *without* labels (labels stay only for
// evaluation) plus seed information (class names / keywords / a few
// labeled ids) held separately in `WeakSupervision`.
class Corpus : public CorpusReader {
 public:
  Corpus() = default;

  Vocabulary& vocab() { return vocab_; }
  const Vocabulary& vocab() const override { return vocab_; }

  std::vector<Document>& docs() { return docs_; }
  const std::vector<Document>& docs() const { return docs_; }

  std::vector<std::string>& label_names() { return label_names_; }
  const std::vector<std::string>& label_names() const override {
    return label_names_;
  }

  size_t num_docs() const override { return docs_.size(); }
  size_t num_labels() const { return label_names_.size(); }

  // CorpusReader: an in-RAM corpus is one resident shard.
  size_t num_shards() const override { return 1; }
  std::pair<size_t, size_t> ShardDocRange(size_t shard) const override;
  Status VisitShard(
      size_t shard,
      const std::function<void(size_t doc, const DocView&)>& fn)
      const override;

  // Document frequency of every token id (number of docs containing it).
  std::vector<int32_t> DocumentFrequencies() const override;

  // Corpus-wide token occurrence counts.
  std::vector<int64_t> TokenCounts() const override;

  // Gold single-label vector over all docs (requires single-label corpus).
  std::vector<int> GoldLabels() const;

  // Positions (doc index, token offset) of every occurrence of `token_id`,
  // capped at `max_occurrences` (0 = unlimited).
  std::vector<std::pair<size_t, size_t>> Occurrences(
      int32_t token_id, size_t max_occurrences = 0) const;

 private:
  Vocabulary vocab_;
  std::vector<Document> docs_;
  std::vector<std::string> label_names_;
};

// The weak supervision available to a method, mirroring the tutorial's
// three settings: LABELS (category names only), KEYWORDS (a few seed words
// per class), DOCS (a few labeled documents per class).
struct WeakSupervision {
  // Per-class seed keyword token ids (includes the class name token for
  // the LABELS setting).
  std::vector<std::vector<int32_t>> class_keywords;

  // Per-class labeled document indices (DOCS setting); empty otherwise.
  std::vector<std::vector<size_t>> labeled_docs;
};

// Deterministic train/test split of document indices.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

// Splits [0, num_docs) with `test_fraction` held out, shuffled by `seed`.
Split MakeSplit(size_t num_docs, double test_fraction, uint64_t seed);

}  // namespace stm::text

#endif  // STM_TEXT_CORPUS_H_
