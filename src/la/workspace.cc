#include "la/workspace.h"

#include <algorithm>
#include <utility>

namespace stm::la {

namespace {

// Bounds on the per-thread cache. A MiniLm encode graph holds a few
// hundred buffers; the float cap (16M floats = 64MB) covers the largest
// attention graphs in the benches while keeping idle threads cheap.
constexpr size_t kMaxBuffers = 512;
constexpr size_t kMaxFloats = size_t{16} * 1024 * 1024;
// Hard ceiling on ReserveThreadFloats hints (64M floats = 256MB): a
// batch scheduler sizing buckets can raise the cap, but never past this.
constexpr size_t kMaxReservedFloats = size_t{64} * 1024 * 1024;

// Thread-local slot with an explicit destroyed flag so Release during
// thread teardown (static destruction order) degrades to a plain free
// instead of touching a dead object.
struct TlsSlot {
  Workspace workspace;
  bool alive = true;
  ~TlsSlot() { alive = false; }
};

TlsSlot& Slot() {
  static thread_local TlsSlot slot;
  return slot;
}

}  // namespace

Workspace* Workspace::ThreadLocalOrNull() {
  TlsSlot& slot = Slot();
  return slot.alive ? &slot.workspace : nullptr;
}

std::vector<float> Workspace::Acquire(size_t n) {
  // Best fit: smallest cached capacity that still holds n floats.
  auto it = std::lower_bound(
      pool_.begin(), pool_.end(), n,
      [](const std::vector<float>& buf, size_t need) {
        return buf.capacity() < need;
      });
  if (it == pool_.end()) return std::vector<float>(n);
  std::vector<float> buf = std::move(*it);
  pool_.erase(it);
  cached_floats_ -= buf.capacity();
  buf.resize(n);
  return buf;
}

void Workspace::Release(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  cached_floats_ += buf.capacity();
  auto it = std::lower_bound(
      pool_.begin(), pool_.end(), buf.capacity(),
      [](const std::vector<float>& cached, size_t cap) {
        return cached.capacity() < cap;
      });
  pool_.insert(it, std::move(buf));
  // Evict smallest-capacity buffers first: large panels are the expensive
  // ones to reallocate.
  const size_t cap = max_floats_ > 0 ? max_floats_ : kMaxFloats;
  while (pool_.size() > kMaxBuffers || cached_floats_ > cap) {
    cached_floats_ -= pool_.front().capacity();
    pool_.erase(pool_.begin());
  }
}

void Workspace::ReserveThreadFloats(size_t floats) {
  Workspace* ws = ThreadLocalOrNull();
  if (ws == nullptr) return;
  const size_t want = std::min(floats, kMaxReservedFloats);
  ws->max_floats_ = std::max(std::max(ws->max_floats_, kMaxFloats), want);
}

void Workspace::Clear() {
  pool_.clear();
  cached_floats_ = 0;
}

std::vector<float> AcquireVec(size_t n) {
  if (Workspace* ws = Workspace::ThreadLocalOrNull()) return ws->Acquire(n);
  return std::vector<float>(n);
}

std::vector<float> AcquireZeroedVec(size_t n) {
  std::vector<float> buf = AcquireVec(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void ReleaseVec(std::vector<float>&& buf) {
  if (Workspace* ws = Workspace::ThreadLocalOrNull()) {
    ws->Release(std::move(buf));
  }
  // else: vector destructor frees it normally.
}

}  // namespace stm::la
