#include "text/vocabulary.h"

#include <algorithm>

#include "common/check.h"

namespace stm::text {

Vocabulary::Vocabulary() {
  const char* kSpecials[] = {"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"};
  for (const char* token : kSpecials) {
    const int32_t id = static_cast<int32_t>(tokens_.size());
    tokens_.emplace_back(token);
    counts_.push_back(0);
    index_.emplace(token, id);
  }
}

int32_t Vocabulary::AddToken(std::string_view token, int64_t count) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) {
    counts_[static_cast<size_t>(it->second)] += count;
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(tokens_.size());
  tokens_.emplace_back(token);
  counts_.push_back(count);
  index_.emplace(std::string(token), id);
  return id;
}

int32_t Vocabulary::IdOf(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kUnkId : it->second;
}

bool Vocabulary::Contains(std::string_view token) const {
  return index_.count(std::string(token)) > 0;
}

const std::string& Vocabulary::TokenOf(int32_t id) const {
  STM_CHECK_GE(id, 0);
  STM_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[static_cast<size_t>(id)];
}

int64_t Vocabulary::CountOf(int32_t id) const {
  STM_CHECK_GE(id, 0);
  STM_CHECK_LT(static_cast<size_t>(id), counts_.size());
  return counts_[static_cast<size_t>(id)];
}

void Vocabulary::AddCount(int32_t id, int64_t delta) {
  STM_CHECK_GE(id, 0);
  STM_CHECK_LT(static_cast<size_t>(id), counts_.size());
  counts_[static_cast<size_t>(id)] += delta;
}

void Vocabulary::TruncateTo(size_t new_size) {
  STM_CHECK_GE(new_size, static_cast<size_t>(kNumSpecialTokens));
  STM_CHECK_LE(new_size, tokens_.size());
  for (size_t i = new_size; i < tokens_.size(); ++i) {
    index_.erase(tokens_[i]);
  }
  tokens_.resize(new_size);
  counts_.resize(new_size);
}

int64_t Vocabulary::TotalCount() const {
  int64_t total = 0;
  for (size_t i = kNumSpecialTokens; i < counts_.size(); ++i) {
    total += counts_[i];
  }
  return total;
}

Vocabulary Vocabulary::Pruned(int64_t min_count, size_t max_size) const {
  std::vector<int32_t> kept;
  for (size_t i = kNumSpecialTokens; i < tokens_.size(); ++i) {
    if (counts_[i] >= min_count) kept.push_back(static_cast<int32_t>(i));
  }
  std::stable_sort(kept.begin(), kept.end(), [this](int32_t a, int32_t b) {
    return counts_[static_cast<size_t>(a)] > counts_[static_cast<size_t>(b)];
  });
  if (max_size > 0 && kept.size() + kNumSpecialTokens > max_size) {
    kept.resize(max_size - kNumSpecialTokens);
  }
  Vocabulary pruned;
  for (int32_t id : kept) {
    pruned.AddToken(tokens_[static_cast<size_t>(id)],
                    counts_[static_cast<size_t>(id)]);
  }
  return pruned;
}

}  // namespace stm::text
