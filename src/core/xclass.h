#ifndef STM_CORE_XCLASS_H_
#define STM_CORE_XCLASS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "la/matrix.h"
#include "nn/text_classifier.h"
#include "plm/minilm.h"
#include "taxonomy/taxonomy.h"
#include "text/corpus.h"

namespace stm::core {

// X-Class (Wang et al., NAACL'21): class-oriented document
// representations from a pre-trained LM, clustered with a class-prior.
//   1. Static word representations: average contextual vectors over each
//      word's occurrences.
//   2. Class representations: start at the class-name vector and absorb
//      nearest words with harmonically decaying weights.
//   3. Document representations: attention-weighted average of token
//      vectors, weight rising with the token's maximum class similarity.
//   4. Cluster with a Gaussian mixture initialized at the class
//      representations (cluster c stays aligned to class c); train a
//      final classifier on the most confident documents.
struct XClassConfig {
  size_t class_rep_words = 8;       // words absorbed per class rep
  size_t occurrences_per_word = 24; // contextual samples per word
  float attention_temperature = 0.1f;
  double confident_fraction = 0.5;  // docs kept for classifier training
  int classifier_epochs = 8;
  uint64_t seed = 91;
};

class XClass {
 public:
  XClass(const text::Corpus& corpus, plm::MiniLm* model,
         const XClassConfig& config);

  // Full pipeline; returns predictions for every document.
  std::vector<int> Run(const std::vector<std::vector<int32_t>>& label_names);

  // Ablations from the paper's table. Both require Run() first (they
  // reuse its cached representations).
  //  X-Class-Rep: nearest class representation per document.
  std::vector<int> RepOnly() const;
  //  X-Class-Align: the GMM posterior assignment, no final classifier.
  const std::vector<int>& AlignOnly() const { return gmm_assignment_; }

  // Class-oriented document representations (cached by Run), used by the
  // figure benches.
  const la::Matrix& doc_reps() const { return doc_reps_; }

  // Plain average-pooled document representations (tutorial Figure 1).
  la::Matrix AverageDocReps();

  // Final confidence-trained classifier, shared so the serving layer
  // (serve::Server) can route single documents through it. Null before
  // Run().
  std::shared_ptr<nn::TextClassifier> trained_classifier() const {
    return classifier_;
  }

  // Hierarchical mode (the tutorial's summary table lists X-Class as
  // "Flat & Hierarchical / Single-label & Path"): classifies at the leaf
  // level of `tree` and returns each document's root-to-leaf path.
  // `leaf_label_names[i]` are the name tokens of tree leaf `leaves[i]`.
  std::vector<std::vector<int>> RunPaths(
      const taxonomy::LabelTree& tree,
      const std::vector<int>& leaves,
      const std::vector<std::vector<int32_t>>& leaf_label_names);

 private:
  std::vector<float> StaticWordRep(int32_t word);

  const text::Corpus& corpus_;
  plm::MiniLm* model_;
  XClassConfig config_;
  la::Matrix doc_reps_;
  la::Matrix class_reps_;
  std::vector<int> gmm_assignment_;
  std::shared_ptr<nn::TextClassifier> classifier_;
};

}  // namespace stm::core

#endif  // STM_CORE_XCLASS_H_
