file(REMOVE_RECURSE
  "libstm.a"
)
