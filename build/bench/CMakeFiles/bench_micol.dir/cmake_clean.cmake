file(REMOVE_RECURSE
  "CMakeFiles/bench_micol.dir/bench_micol.cc.o"
  "CMakeFiles/bench_micol.dir/bench_micol.cc.o.d"
  "bench_micol"
  "bench_micol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
