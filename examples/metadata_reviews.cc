// Metadata-aware categorization with MetaCat.
//
// GitHub-repository-like documents with user and tag metadata, ten labeled
// documents per class. MetaCat casts everything as a heterogeneous
// information network, learns joint embeddings, synthesizes extra training
// documents per label, and classifies with text + metadata features.
// The text-only ablation shows how much the metadata contributes.
//
//   ./example_metadata_reviews

#include <cstdio>

#include "core/metacat.h"
#include "datasets/specs.h"
#include "eval/metrics.h"

int main() {
  stm::datasets::SyntheticSpec spec =
      stm::datasets::GithubBioSpec(/*seed=*/13);
  spec.num_docs = 260;
  spec.pretrain_docs = 0;
  stm::datasets::SyntheticDataset data = stm::datasets::Generate(spec);
  std::printf("corpus: %zu documents, %zu classes (weak text, strong "
              "metadata)\n",
              data.corpus.num_docs(), data.corpus.num_labels());

  // Ten labeled documents per class — the only supervision.
  const auto labeled =
      stm::datasets::SampleLabeledDocs(data.corpus, 10, /*seed=*/5);

  const auto gold = data.corpus.GoldLabels();
  {
    stm::core::MetaCatConfig config;
    stm::core::MetaCat method(data.corpus, config);
    const auto pred = method.Run(labeled);
    std::printf("MetaCat (text + metadata): micro-F1 %.3f\n",
                stm::eval::MicroF1(pred, gold, data.corpus.num_labels()));
  }
  {
    stm::core::MetaCatConfig config;
    config.use_metadata_features = false;
    stm::core::MetaCat method(data.corpus, config);
    const auto pred = method.Run(labeled);
    std::printf("MetaCat (text only):       micro-F1 %.3f\n",
                stm::eval::MicroF1(pred, gold, data.corpus.num_labels()));
  }

  // Inspect one document's metadata.
  const auto& doc = data.corpus.docs()[0];
  std::printf("doc 0 metadata:");
  for (const auto& [type, values] : doc.metadata) {
    for (const auto& value : values) {
      std::printf(" %s=%s", type.c_str(), value.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
