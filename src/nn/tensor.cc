#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "la/workspace.h"

namespace stm::nn {

Node::~Node() {
  la::ReleaseVec(std::move(value));
  la::ReleaseVec(std::move(grad));
}

void Node::EnsureGrad() {
  if (grad.size() == value.size()) return;
  la::ReleaseVec(std::move(grad));
  grad = la::AcquireZeroedVec(value.size());
}

size_t ShapeSize(const std::vector<size_t>& shape) {
  size_t total = 1;
  for (size_t d : shape) total *= d;
  return total;
}

Tensor Tensor::Zeros(std::vector<size_t> shape, float fill) {
  auto node = std::make_shared<Node>();
  node->value = la::AcquireVec(ShapeSize(shape));
  std::fill(node->value.begin(), node->value.end(), fill);
  node->shape = std::move(shape);
  return Tensor(std::move(node));
}

Tensor Tensor::FromVector(std::vector<float> values,
                          std::vector<size_t> shape) {
  STM_CHECK_EQ(values.size(), ShapeSize(shape));
  auto node = std::make_shared<Node>();
  node->value = std::move(values);
  node->shape = std::move(shape);
  return Tensor(std::move(node));
}

Tensor Tensor::Param(std::vector<size_t> shape, float stddev, Rng& rng) {
  Tensor t = Zeros(std::move(shape));
  for (float& v : t.value()) v = static_cast<float>(rng.Normal(0.0, stddev));
  t.node()->requires_grad = true;
  return t;
}

Tensor Tensor::XavierParam(size_t fan_in, size_t fan_out, Rng& rng) {
  Tensor t = Zeros({fan_in, fan_out});
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : t.value()) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
  t.node()->requires_grad = true;
  return t;
}

Tensor Tensor::ZeroParam(std::vector<size_t> shape) {
  Tensor t = Zeros(std::move(shape));
  t.node()->requires_grad = true;
  return t;
}

Tensor Tensor::OnesParam(std::vector<size_t> shape) {
  Tensor t = Zeros(std::move(shape), 1.0f);
  t.node()->requires_grad = true;
  return t;
}

const std::vector<size_t>& Tensor::shape() const {
  STM_CHECK(defined());
  return node_->shape;
}

size_t Tensor::size() const {
  STM_CHECK(defined());
  return node_->value.size();
}

size_t Tensor::rank() const { return shape().size(); }

size_t Tensor::dim(size_t axis) const {
  STM_CHECK_LT(axis, shape().size());
  return shape()[axis];
}

std::vector<float>& Tensor::value() {
  STM_CHECK(defined());
  return node_->value;
}

const std::vector<float>& Tensor::value() const {
  STM_CHECK(defined());
  return node_->value;
}

std::vector<float>& Tensor::grad() {
  STM_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

const std::vector<float>& Tensor::grad() const {
  STM_CHECK(defined());
  return node_->grad;
}

bool Tensor::requires_grad() const {
  STM_CHECK(defined());
  return node_->requires_grad;
}

float Tensor::item() const {
  STM_CHECK_EQ(size(), 1u);
  return value()[0];
}

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in the returned vector; we then walk it in reverse).
void TopoSort(Node* root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  // Stack of (node, next-parent-index).
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].get();
      ++idx;
      if (parent != nullptr && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& loss) {
  STM_CHECK(loss.defined());
  STM_CHECK_EQ(loss.size(), 1u) << "Backward requires a scalar loss";
  Node* root = loss.node();
  root->EnsureGrad();
  root->grad[0] = 1.0f;

  std::vector<Node*> order;
  TopoSort(root, order);
  // Post-order puts ancestors first; propagate from the loss backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && !node->grad.empty()) node->backward(*node);
  }
}

}  // namespace stm::nn
