#ifndef STM_PLM_PAIR_SCORER_H_
#define STM_PLM_PAIR_SCORER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "la/qgemm.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace stm::plm {

// Sentence-pair relevance head over frozen encoder vectors: an MLP on the
// standard interaction features [u; v; |u-v|; u*v] with a binary output.
//
// This stands in for two pre-trained artifacts of the tutorial:
//  * TaxoClass's NLI relevance model (roberta-large-mnli): we pre-train
//    the head on entailment pairs built from auxiliary topics, then apply
//    it to unseen evaluation classes;
//  * MICoL's Cross-Encoder: trained on metadata-induced document pairs,
//    applied to (document, label description) pairs at inference.
class PairScorer {
 public:
  struct Config {
    size_t encoder_dim = 0;
    size_t hidden = 48;
    float lr = 4e-3f;
    size_t batch_size = 32;
    int epochs = 8;
    uint64_t seed = 41;
  };

  explicit PairScorer(const Config& config);

  // Trains on (u, v, label∈{0,1}) triples for `config.epochs` epochs.
  // Returns final mean loss.
  double Train(const std::vector<std::vector<float>>& u,
               const std::vector<std::vector<float>>& v,
               const std::vector<float>& labels);

  // Relevance probability in [0, 1].
  float Score(const std::vector<float>& u, const std::vector<float>& v);

  // Scores many pairs at once (parallel across pairs on the global
  // thread pool). Must not be interleaved with Train(). In fp32 mode
  // scores[i] == Score(u[i], v[i]) exactly; when quantized inference is
  // enabled (STM_QUANT / plm::SetQuantInference) the batch runs the head
  // as two int8 GEMMs over a lazily frozen weight snapshot — scores then
  // match Score() to quantization error, not bitwise, but are themselves
  // bit-identical across thread counts and batch splits.
  std::vector<float> ScoreBatch(const std::vector<std::vector<float>>& u,
                                const std::vector<std::vector<float>>& v);

 private:
  // Int8 snapshot of the two Linear layers, built lazily on the first
  // quantized ScoreBatch and invalidated by Train().
  struct FrozenHead {
    la::Int8PackedB w1, w2;
    std::vector<float> b1, b2;
  };

  std::vector<float> Interaction(const std::vector<float>& u,
                                 const std::vector<float>& v) const;

  const FrozenHead* Frozen();
  void InvalidateFrozen();

  Config config_;
  Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::Linear> hidden_;
  std::unique_ptr<nn::Linear> out_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  std::mutex freeze_mu_;
  std::shared_ptr<const FrozenHead> frozen_;
};

}  // namespace stm::plm

#endif  // STM_PLM_PAIR_SCORER_H_
