#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"
#include "nn/feature_classifier.h"
#include "nn/ops.h"
#include "plm/pair_scorer.h"

namespace stm {
namespace {

TEST(RngDistributionsTest, GammaMeanMatchesShape) {
  Rng rng(3);
  for (double shape : {0.5, 2.0, 8.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape " << shape;
  }
}

TEST(RngDistributionsTest, BetaInUnitIntervalWithRightMean) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(2.0, 6.0);
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);  // mean = a/(a+b)
}

TEST(NormalizeRowsOpTest, ForwardUnitNorm) {
  nn::Tensor x = nn::Tensor::FromVector({3, 4, 0, 0, 5, 12}, {3, 2});
  nn::Tensor y = nn::NormalizeRowsOp(x);
  EXPECT_NEAR(la::Norm(y.value().data(), 2), 1.0f, 1e-5f);
  // Zero row passes through unchanged.
  EXPECT_FLOAT_EQ(y.value()[2], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[3], 0.0f);
}

TEST(NormalizeRowsOpTest, GradientMatchesNumeric) {
  Rng rng(7);
  nn::Tensor x = nn::Tensor::Param({2, 3}, 0.7f, rng);
  nn::Tensor w = nn::Tensor::FromVector({0.3f, -0.8f, 0.5f, 0.2f, 0.9f,
                                         -0.4f},
                                        {2, 3});
  auto loss_fn = [&] {
    return nn::SumAll(nn::Mul(nn::NormalizeRowsOp(x), w));
  };
  nn::Tensor loss = loss_fn();
  for (float& g : x.grad()) g = 0.0f;
  nn::Backward(loss);
  const auto analytic = x.grad();
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    const float saved = x.value()[i];
    x.value()[i] = saved + eps;
    const float plus = loss_fn().item();
    x.value()[i] = saved - eps;
    const float minus = loss_fn().item();
    x.value()[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 2e-2f);
  }
}

TEST(PairScorerTest, LearnsCosineSeparablePairs) {
  Rng rng(11);
  const size_t dim = 8;
  // Positives: v = u + noise; negatives: independent random v.
  std::vector<std::vector<float>> u;
  std::vector<std::vector<float>> v;
  std::vector<float> labels;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> a(dim);
    for (float& x : a) x = static_cast<float>(rng.Normal());
    la::NormalizeInPlace(a.data(), dim);
    std::vector<float> b = a;
    for (float& x : b) x += static_cast<float>(rng.Normal(0.0, 0.2));
    la::NormalizeInPlace(b.data(), dim);
    u.push_back(a);
    v.push_back(b);
    labels.push_back(1.0f);
    std::vector<float> c(dim);
    for (float& x : c) x = static_cast<float>(rng.Normal());
    la::NormalizeInPlace(c.data(), dim);
    u.push_back(a);
    v.push_back(c);
    labels.push_back(0.0f);
  }
  plm::PairScorer::Config config;
  config.encoder_dim = dim;
  config.epochs = 10;
  plm::PairScorer scorer(config);
  const double loss = scorer.Train(u, v, labels);
  EXPECT_LT(loss, 0.5);
  // Held-out check.
  int correct = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<float> a(dim);
    for (float& x : a) x = static_cast<float>(rng.Normal());
    la::NormalizeInPlace(a.data(), dim);
    std::vector<float> b = a;
    for (float& x : b) x += static_cast<float>(rng.Normal(0.0, 0.2));
    la::NormalizeInPlace(b.data(), dim);
    std::vector<float> c(dim);
    for (float& x : c) x = static_cast<float>(rng.Normal());
    la::NormalizeInPlace(c.data(), dim);
    correct += scorer.Score(a, b) > scorer.Score(a, c);
  }
  EXPECT_GE(correct, 40);
}

la::Matrix BlobFeatures(std::vector<int>* labels, size_t n, uint64_t seed) {
  Rng rng(seed);
  la::Matrix features(n, 4);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % 3);
    (*labels)[i] = c;
    for (size_t j = 0; j < 4; ++j) {
      features.At(i, j) = static_cast<float>(
          rng.Normal(j == static_cast<size_t>(c) ? 2.0 : 0.0, 0.4));
    }
  }
  return features;
}

TEST(FeatureMlpTest, LearnsSoftmaxTask) {
  std::vector<int> labels;
  la::Matrix features = BlobFeatures(&labels, 150, 5);
  la::Matrix targets(150, 3);
  for (size_t i = 0; i < 150; ++i) {
    targets.At(i, static_cast<size_t>(labels[i])) = 1.0f;
  }
  nn::FeatureMlpClassifier::Config config;
  config.input_dim = 4;
  config.num_classes = 3;
  config.hidden = 16;
  nn::FeatureMlpClassifier clf(config);
  for (int epoch = 0; epoch < 30; ++epoch) {
    clf.TrainEpoch(features, targets);
  }
  const auto pred = clf.Predict(features);
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += pred[i] == labels[i];
  EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.9);
}

TEST(FeatureMlpTest, MultiLabelSigmoidsAreIndependent) {
  std::vector<int> labels;
  la::Matrix features = BlobFeatures(&labels, 150, 6);
  // Multi-label: class c and class (c+1)%3 both on.
  la::Matrix targets(150, 3);
  for (size_t i = 0; i < 150; ++i) {
    targets.At(i, static_cast<size_t>(labels[i])) = 1.0f;
    targets.At(i, static_cast<size_t>((labels[i] + 1) % 3)) = 1.0f;
  }
  nn::FeatureMlpClassifier::Config config;
  config.input_dim = 4;
  config.num_classes = 3;
  config.hidden = 16;
  config.multi_label = true;
  nn::FeatureMlpClassifier clf(config);
  for (int epoch = 0; epoch < 40; ++epoch) {
    clf.TrainEpoch(features, targets);
  }
  const la::Matrix probs = clf.PredictProbs(features);
  // Rows need not sum to 1 (independent sigmoids); both true labels should
  // score above the false one on average.
  double true_mass = 0.0;
  double false_mass = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      if (targets.At(i, c) > 0.0f) {
        true_mass += probs.At(i, c);
      } else {
        false_mass += probs.At(i, c);
      }
    }
  }
  EXPECT_GT(true_mass / (2 * probs.rows()),
            false_mass / probs.rows() + 0.2);
}

TEST(FeatureMlpTest, LinearModeWithoutHidden) {
  std::vector<int> labels;
  la::Matrix features = BlobFeatures(&labels, 90, 7);
  la::Matrix targets(90, 3);
  for (size_t i = 0; i < 90; ++i) {
    targets.At(i, static_cast<size_t>(labels[i])) = 1.0f;
  }
  nn::FeatureMlpClassifier::Config config;
  config.input_dim = 4;
  config.num_classes = 3;
  config.hidden = 0;  // pure linear
  nn::FeatureMlpClassifier clf(config);
  for (int epoch = 0; epoch < 80; ++epoch) {
    clf.TrainEpoch(features, targets);
  }
  const auto pred = clf.Predict(features);
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += pred[i] == labels[i];
  EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.85);
}

}  // namespace
}  // namespace stm
