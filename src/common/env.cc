#include "common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/string_util.h"

namespace stm {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  const std::string message =
      StrFormat("%s failed: %s (%s)", op, path.c_str(), std::strerror(err));
  if (err == ENOENT || err == ENOTDIR) return UnavailableError(message);
  return IoError(message);
}

class PosixEnv : public Env {
 public:
  StatusOr<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string data;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      data.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return data;
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override {
    const std::string temp = StrFormat(
        "%s.tmp-%d-%llu", path.c_str(), static_cast<int>(::getpid()),
        static_cast<unsigned long long>(
            temp_counter_.fetch_add(1, std::memory_order_relaxed)));
    const int fd = ::open(temp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open", temp, errno);
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        ::unlink(temp.c_str());
        return ErrnoStatus("write", temp, err);
      }
      written += static_cast<size_t>(n);
    }
    // Flush file contents before the rename so a crash cannot publish a
    // name pointing at unwritten data.
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(temp.c_str());
      return ErrnoStatus("fsync", temp, err);
    }
    if (::close(fd) != 0) {
      const int err = errno;
      ::unlink(temp.c_str());
      return ErrnoStatus("close", temp, err);
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
      const int err = errno;
      ::unlink(temp.c_str());
      return ErrnoStatus("rename", path, err);
    }
    return Status::Ok();
  }

  Status Delete(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::Ok();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

 private:
  std::atomic<uint64_t> temp_counter_{0};
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status WriteFileAtomicWithRetry(Env* env, const std::string& path,
                                std::string_view data,
                                const RetryOptions& retry) {
  Status status;
  int backoff_ms = retry.initial_backoff_ms;
  const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    status = env->WriteFileAtomic(path, data);
    // Only kUnavailable is worth retrying; kIoError is deterministic.
    if (status.ok() || status.code() != StatusCode::kUnavailable) break;
  }
  return status;
}

bool FaultInjectingEnv::MaybeInjectOpFault(const char* op,
                                           const std::string& path,
                                           Status* out) {
  const int index = op_count_++;
  if (fail_op_at_ >= 0 && index == fail_op_at_) {
    fail_op_at_ = -1;
    ++injected_failures_;
    *out = Status(fail_op_code_,
                  StrFormat("injected fault on %s: %s", op, path.c_str()));
    return true;
  }
  return false;
}

StatusOr<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("ReadFile", path, &fault)) return fault;
  return base_->ReadFile(path);
}

Status FaultInjectingEnv::WriteFileAtomic(const std::string& path,
                                          std::string_view data) {
  ++write_count_;
  Status fault;
  if (MaybeInjectOpFault("WriteFileAtomic", path, &fault)) return fault;
  if (fail_writes_remaining_ > 0) {
    --fail_writes_remaining_;
    ++injected_failures_;
    return Status(fail_write_code_,
                  StrFormat("injected write fault: %s", path.c_str()));
  }
  if (crash_write_armed_) {
    crash_write_armed_ = false;
    ++injected_failures_;
    // Simulate dying between the temp write and the rename: the partial
    // temp file exists, the destination is untouched.
    (void)base_->WriteFileAtomic(path + ".crashtmp",
                                 data.substr(0, data.size() / 2));
    return IoError(
        StrFormat("injected crash before rename: %s", path.c_str()));
  }
  if (short_write_armed_) {
    short_write_armed_ = false;
    ++injected_failures_;
    return base_->WriteFileAtomic(
        path, data.substr(0, std::min(short_write_keep_, data.size())));
  }
  if (truncate_armed_) {
    truncate_armed_ = false;
    ++injected_failures_;
    const size_t keep =
        data.size() >= truncate_drop_ ? data.size() - truncate_drop_ : 0;
    return base_->WriteFileAtomic(path, data.substr(0, keep));
  }
  return base_->WriteFileAtomic(path, data);
}

Status FaultInjectingEnv::Delete(const std::string& path) {
  Status fault;
  if (MaybeInjectOpFault("Delete", path, &fault)) return fault;
  return base_->Delete(path);
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  Status fault;
  if (MaybeInjectOpFault("Rename", from, &fault)) return fault;
  return base_->Rename(from, to);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace stm
