#ifndef STM_SERVE_SERVE_H_
#define STM_SERVE_SERVE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "plm/minilm.h"

namespace stm::serve {

// Online classification service over the library's trained methods.
//
// Every core method in this repo runs as a batch `Run()` over a fixed
// corpus; production traffic is a stream of single documents. The Server
// below turns a trained method into a request/response service:
//
//   request -> bounded queue -> dynamic batch -> shared encoder -> hook
//
//  * Incoming single-document requests are coalesced into batches of up
//    to STM_SERVE_MAX_BATCH documents under a latency deadline of
//    STM_SERVE_DEADLINE_MS (a lone request under light load waits at
//    most the deadline before it runs alone).
//  * A drained batch is encoded through MiniLm::PoolBatch/EncodeBatch —
//    i.e. through plm::PlanBuckets and the frozen int8 encoder when
//    STM_QUANT is on, the fp32 graph otherwise — so the serve path reuses
//    the exact batch machinery (and its bit-identity guarantees) that the
//    offline Run() paths use.
//  * Admission control: the queue holds at most STM_SERVE_QUEUE_DEPTH
//    requests. When it is full, Submit() rejects with kUnavailable and
//    bumps a shed counter; overload degrades into rejections, never into
//    unbounded memory growth.
//  * Routing: any number of Classifier adapters register under model
//    names; each request names the model it wants.
//
// Threading (see DESIGN.md 5h): the drain workers are DEDICATED
// std::threads owned by the Server, never members of the global
// ThreadPool. ThreadPool::Run serializes when called from inside a pool
// worker (the nested-submit rejection in thread_pool.cc), so a serve
// worker that lived in the pool would run every encoder GEMM single-
// threaded. As plain threads they *submit* parallel regions to the
// global pool and participate in draining them, exactly like the batch
// Run() callers do.
//
// Determinism: each document's result depends only on (model weights,
// quant mode, token ids) — never on what else shared its batch, the
// timing of arrivals, or STM_NUM_THREADS. This is the PR 5 invariant
// (bucketed == per-doc, bit-for-bit) plus per-document classify hooks,
// and is pinned by tests/serve_test.cc and bench_serve --smoke.

// ---- options ----

struct ServeOptions {
  // Upper bound on documents drained into one batch.
  size_t max_batch = 32;
  // How long a drain worker may wait for the batch to fill, measured
  // from the oldest queued request's arrival. 0 = never wait.
  double deadline_ms = 2.0;
  // Admission-control bound on queued (not yet drained) requests.
  size_t queue_depth = 256;
  // Dedicated drain threads. More than one lets a second batch encode
  // while the first is still in its classify hooks.
  size_t workers = 2;
};

// Options from the environment (validated via common/env_parse.h; a set
// but malformed knob warns on stderr and keeps the default):
//   STM_SERVE_MAX_BATCH    [1, 4096]      default 32
//   STM_SERVE_DEADLINE_MS  [0, 60000]     default 2.0
//   STM_SERVE_QUEUE_DEPTH  [1, 1048576]   default 256
//   STM_SERVE_WORKERS      [1, 256]       default 2
ServeOptions ServeOptionsFromEnv();

// ---- the routing interface ----

struct Prediction {
  // Primary (argmax) label.
  int label = -1;
  // Multi-label methods (TaxoClass) additionally fill the full predicted
  // set, closed under taxonomy ancestors, sorted ascending.
  std::vector<int> labels;
  // Per-class scores when the method computes them anyway (cosines,
  // probabilities); empty otherwise.
  std::vector<float> scores;
};

// One trained method behind the Server. Implementations declare which
// encoder output they need; the Server computes it once per batch and
// hands each document to the per-document hook. Hooks MUST be
// deterministic pure functions of their inputs and safe to call
// concurrently from several drain workers (every adapter in
// core/serve_adapters.h is: inference-only forward passes over frozen
// parameters).
class Classifier {
 public:
  enum class Input {
    kTokens,  // raw token ids only (bag-of-words style methods)
    kPooled,  // mean-pooled document vector from the shared encoder
    kHidden,  // per-token hidden states from the shared encoder
  };

  virtual ~Classifier() = default;

  virtual std::string name() const = 0;
  virtual size_t num_classes() const = 0;
  virtual Input input() const { return Input::kPooled; }

  // Exactly one of `pooled` / `hidden` is non-null, per input():
  // `pooled` points at the document's dim-wide PoolBatch row, `hidden`
  // at its EncodeBatch matrix. Both are bit-identical to what the batch
  // Run() path computes for the same ids.
  virtual Prediction Classify(const std::vector<int32_t>& ids,
                              const float* pooled,
                              const la::Matrix* hidden) const = 0;
};

// ---- the server ----

class Server {
 public:
  struct Stats {
    uint64_t accepted = 0;   // requests admitted to the queue
    uint64_t shed = 0;       // rejected kUnavailable: queue full
    uint64_t invalid = 0;    // rejected kInvalidArgument
    uint64_t completed = 0;  // predictions delivered
    uint64_t batches = 0;    // drained batches
    size_t max_queue = 0;    // high-water queue depth
  };

  // `model` is the shared encoder; it must not be trained while the
  // server is running (same contract as every batch inference path).
  Server(plm::MiniLm* model, const ServeOptions& options);
  ~Server();  // Shutdown() + join

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers `classifier` under `name`. Not thread-safe against
  // in-flight Submit calls: register everything before serving traffic.
  void Register(const std::string& name,
                std::shared_ptr<const Classifier> classifier);

  // Non-blocking admission. On acceptance the future resolves when the
  // batch carrying the document completes. Rejections are immediate:
  //   kInvalidArgument  unknown model name, or a token id outside the
  //                     encoder's vocabulary (checked here so a bad
  //                     request can never abort a drain worker);
  //   kUnavailable      queue at queue_depth (shed), or shutting down.
  std::future<StatusOr<Prediction>> Submit(const std::string& model,
                                           std::vector<int32_t> ids);

  // Blocking convenience: Submit + wait.
  StatusOr<Prediction> Serve(const std::string& model,
                             std::vector<int32_t> ids);

  // Stops admitting, fails queued-but-undrained requests with
  // kUnavailable, and joins the workers. Idempotent.
  void Shutdown();

  Stats stats() const;

  // Per-request latencies (admission -> prediction delivered) in
  // milliseconds, drained destructively; the load bench derives p50/p99
  // from these without a lock on the hot path beyond the stats mutex.
  std::vector<double> TakeLatenciesMs();

  const ServeOptions& options() const { return options_; }

 private:
  struct Request {
    std::vector<int32_t> ids;
    const Classifier* classifier = nullptr;
    std::promise<StatusOr<Prediction>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  std::vector<std::unique_ptr<Request>> NextBatch();  // empty = shutdown
  void RunBatch(std::vector<std::unique_ptr<Request>> batch);

  plm::MiniLm* const model_;
  const ServeOptions options_;
  std::unordered_map<std::string, std::shared_ptr<const Classifier>>
      classifiers_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // signals arrivals and shutdown
  std::deque<std::unique_ptr<Request>> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  Stats stats_;
  std::vector<double> latencies_ms_;

  std::mutex join_mu_;  // serializes concurrent Shutdown() joins
  std::vector<std::thread> workers_;
};

}  // namespace stm::serve

#endif  // STM_SERVE_SERVE_H_
