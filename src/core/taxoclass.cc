#include "core/taxoclass.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/ann.h"
#include "nn/feature_classifier.h"
#include "plm/encode_cache.h"
#include "text/tfidf.h"

namespace stm::core {

std::vector<float> OccurrenceAverageRep(
    plm::MiniLm* model, const std::vector<std::vector<int32_t>>& docs,
    const std::vector<int32_t>& name_tokens, size_t max_occurrences) {
  STM_CHECK(!name_tokens.empty());
  const size_t dim = model->config().dim;
  const size_t max_seq = model->config().max_seq;
  const int32_t target = name_tokens[0];
  // Select the same documents the old serial per-doc loop would have
  // encoded (in corpus order, until the cumulative occurrence count over
  // truncated prefixes reaches the cap), then encode them in ONE parallel
  // batch. The accumulation below walks rows in the original order, so
  // the representation is bitwise identical to the serial version.
  std::vector<std::vector<int32_t>> batch;
  std::vector<const std::vector<int32_t>*> selected;
  size_t planned = 0;
  for (const auto& doc : docs) {
    if (planned >= max_occurrences) break;
    bool contains = false;
    for (int32_t id : doc) contains = contains || id == target;
    if (!contains) continue;
    selected.push_back(&doc);
    const size_t len = std::min(doc.size(), max_seq);
    for (size_t t = 0; t < len; ++t) planned += doc[t] == target ? 1 : 0;
  }
  batch.reserve(selected.size());
  for (const auto* doc : selected) batch.push_back(*doc);
  const std::vector<la::Matrix> hiddens = model->EncodeBatch(batch);
  std::vector<float> rep(dim, 0.0f);
  size_t used = 0;
  for (size_t d = 0; d < selected.size(); ++d) {
    const auto& doc = *selected[d];
    const la::Matrix& hidden = hiddens[d];
    for (size_t t = 0; t < hidden.rows() && used < max_occurrences; ++t) {
      if (doc[t] == target) {
        la::Axpy(1.0f, hidden.Row(t), rep.data(), dim);
        ++used;
      }
    }
  }
  if (used == 0) rep = model->Pool(name_tokens);
  la::NormalizeInPlace(rep.data(), dim);
  return rep;
}

std::vector<float> TopTokenContext(const la::Matrix& hidden,
                                   const std::vector<float>& class_rep,
                                   size_t k) {
  STM_CHECK_GT(hidden.rows(), 0u);
  const size_t dim = hidden.cols();
  // Batched top-k over the token rows (base side reused per class). The
  // old partial_sort left equal-similarity token order unspecified; the
  // retrieval contract pins ties to ascending token position.
  la::Matrix query(1, dim);
  query.SetRow(0, class_rep);
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(query, hidden, k);
  std::vector<float> context(dim, 0.0f);
  for (const ann::Neighbor& n : top[0]) {
    la::Axpy(1.0f, hidden.Row(n.id), context.data(), dim);
  }
  la::NormalizeInPlace(context.data(), dim);
  return context;
}

std::unique_ptr<plm::PairScorer> TrainRelevanceModel(
    plm::MiniLm* model, const std::vector<std::vector<int32_t>>& aux_docs,
    const std::vector<int>& aux_labels,
    const std::vector<std::vector<int32_t>>& aux_topic_name_tokens,
    uint64_t seed) {
  STM_CHECK(model != nullptr);
  STM_CHECK_EQ(aux_docs.size(), aux_labels.size());
  STM_CHECK(!aux_topic_name_tokens.empty());
  Rng rng(seed);

  // Every topic rep below re-encodes the subset of aux docs containing
  // its name, and the pair-construction pass re-encodes all of them; a
  // scoped cache collapses those overlapping passes into one encode per
  // distinct document.
  plm::ScopedEncodeCache encode_cache(model);

  // Occurrence-averaged topic representations over the aux corpus.
  std::vector<std::vector<float>> topic_reps;
  for (const auto& tokens : aux_topic_name_tokens) {
    topic_reps.push_back(OccurrenceAverageRep(model, aux_docs, tokens));
  }

  // One batched encoding pass over the aux corpus; the training-pair
  // construction below consumes rows in the same order as before, so the
  // pairs (and the scorer trained on them) are unchanged.
  const std::vector<la::Matrix> hiddens = model->EncodeBatch(aux_docs);

  std::vector<std::vector<float>> u;
  std::vector<std::vector<float>> v;
  std::vector<float> labels;
  for (size_t d = 0; d < aux_docs.size(); ++d) {
    const la::Matrix& hidden = hiddens[d];
    const size_t pos = static_cast<size_t>(aux_labels[d]);
    u.push_back(TopTokenContext(hidden, topic_reps[pos]));
    v.push_back(topic_reps[pos]);
    labels.push_back(1.0f);
    // Two negatives: evidence is recomputed w.r.t. the negative topic so
    // the scorer learns "the best available evidence still fails".
    for (int k = 0; k < 2; ++k) {
      size_t neg = rng.UniformInt(topic_reps.size());
      while (neg == pos && topic_reps.size() > 1) {
        neg = rng.UniformInt(topic_reps.size());
      }
      u.push_back(TopTokenContext(hidden, topic_reps[neg]));
      v.push_back(topic_reps[neg]);
      labels.push_back(0.0f);
    }
  }

  plm::PairScorer::Config config;
  config.encoder_dim = model->config().dim;
  config.epochs = 12;
  config.seed = seed + 1;
  auto scorer = std::make_unique<plm::PairScorer>(config);
  scorer->Train(u, v, labels);
  return scorer;
}

TaxoClass::TaxoClass(const text::Corpus& corpus,
                     const taxonomy::LabelTree& tree, plm::MiniLm* model,
                     plm::PairScorer* relevance,
                     const TaxoClassConfig& config)
    : corpus_(corpus),
      tree_(tree),
      model_(model),
      relevance_(relevance),
      config_(config) {
  STM_CHECK(model != nullptr);
  STM_CHECK(relevance != nullptr);
}

TaxoClass::Result TaxoClass::Run(
    const std::vector<std::vector<int32_t>>& label_name_tokens) {
  STM_CHECK_EQ(label_name_tokens.size(), tree_.size());
  const size_t num_nodes = tree_.size();
  const size_t num_docs = corpus_.num_docs();

  // Per-node occurrence reps each encode the documents containing that
  // node's name, and the relevance pass encodes the full corpus; cache
  // the hidden states so every distinct document is encoded once.
  plm::ScopedEncodeCache encode_cache(model_);

  // Occurrence-averaged class representations over the target corpus
  // (class names only — no labels involved).
  std::vector<std::vector<int32_t>> corpus_tokens;
  corpus_tokens.reserve(num_docs);
  for (const auto& doc : corpus_.docs()) corpus_tokens.push_back(doc.tokens);
  std::vector<std::vector<float>> class_reps(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    class_reps[n] =
        OccurrenceAverageRep(model_, corpus_tokens, label_name_tokens[n]);
  }

  // One encoding pass; hidden states reused for every class.
  const std::vector<la::Matrix> hidden = model_->EncodeBatch(corpus_tokens);

  // ---- top-down exploration with the relevance model ----
  // Documents explore independently: each iteration writes only row d of
  // `relevance` and slot d of `candidates_`, and the relevance model is
  // read-only here, so the parallel loop matches the serial one exactly.
  candidates_.assign(num_docs, {});
  la::Matrix relevance(num_docs, num_nodes);
  relevance.Fill(-1.0f);  // -1 = unexplored
  ParallelFor(0, num_docs, 1, [&](size_t doc_begin, size_t doc_end) {
  for (size_t d = doc_begin; d < doc_end; ++d) {
    std::vector<int> frontier = tree_.Roots();
    std::set<int> explored;
    while (!frontier.empty()) {
      std::vector<std::pair<float, int>> scored;
      for (int node : frontier) {
        const size_t n = static_cast<size_t>(node);
        const std::vector<float> evidence =
            TopTokenContext(hidden[d], class_reps[n]);
        const float score = relevance_->Score(evidence, class_reps[n]);
        relevance.At(d, n) = score;
        scored.emplace_back(score, node);
        explored.insert(node);
      }
      std::sort(scored.rbegin(), scored.rend());
      std::vector<int> next;
      const size_t keep = std::min(config_.beam_per_level, scored.size());
      for (size_t i = 0; i < keep; ++i) {
        const auto& children = tree_.ChildrenOf(scored[i].second);
        next.insert(next.end(), children.begin(), children.end());
      }
      frontier = std::move(next);
    }
    candidates_[d].assign(explored.begin(), explored.end());
  }
  });

  // ---- core classes: per class, the most relevant scored docs ----
  la::Matrix targets(num_docs, num_nodes);
  std::vector<bool> has_core(num_docs, false);
  for (size_t n = 0; n < num_nodes; ++n) {
    std::vector<std::pair<float, size_t>> scored;
    for (size_t d = 0; d < num_docs; ++d) {
      const float r = relevance.At(d, n);
      if (r >= 0.0f) scored.emplace_back(r, d);
    }
    if (scored.empty()) continue;
    std::sort(scored.rbegin(), scored.rend());
    const size_t cutoff = std::max(
        config_.core_min_per_class,
        static_cast<size_t>(scored.size() *
                            (1.0 - config_.core_percentile)));
    for (size_t i = 0; i < cutoff && i < scored.size(); ++i) {
      targets.At(scored[i].second, n) = 1.0f;
      has_core[scored[i].second] = true;
    }
  }
  // Close targets under ancestors.
  for (size_t d = 0; d < num_docs; ++d) {
    for (size_t n = 0; n < num_nodes; ++n) {
      if (targets.At(d, n) > 0.0f) {
        for (int anc : tree_.WithAncestors(static_cast<int>(n))) {
          targets.At(d, static_cast<size_t>(anc)) = 1.0f;
        }
      }
    }
  }

  // ---- multi-label classifier on normalized bow features ----
  const size_t vocab_size = corpus_.vocab().size();
  la::Matrix features(num_docs, vocab_size);
  for (size_t d = 0; d < num_docs; ++d) {
    float total = 0.0f;
    float* row = features.Row(d);
    for (int32_t id : corpus_.docs()[d].tokens) {
      if (id < text::kNumSpecialTokens) continue;
      row[id] += 1.0f;
      total += 1.0f;
    }
    if (total > 0.0f) {
      for (size_t j = 0; j < vocab_size; ++j) row[j] /= total;
    }
  }

  nn::FeatureMlpClassifier::Config clf_config;
  clf_config.input_dim = vocab_size;
  clf_config.num_classes = num_nodes;
  clf_config.hidden = 64;
  clf_config.multi_label = true;
  clf_config.seed = config_.seed;
  classifier_ = std::make_shared<nn::FeatureMlpClassifier>(clf_config);
  nn::FeatureMlpClassifier& classifier = *classifier_;

  std::vector<size_t> core_docs;
  for (size_t d = 0; d < num_docs; ++d) {
    if (has_core[d]) core_docs.push_back(d);
  }
  la::Matrix core_features(core_docs.size(), vocab_size);
  la::Matrix core_targets(core_docs.size(), num_nodes);
  for (size_t i = 0; i < core_docs.size(); ++i) {
    core_features.SetRow(i, features.RowVec(core_docs[i]));
    core_targets.SetRow(i, targets.RowVec(core_docs[i]));
  }
  for (int epoch = 0; epoch < config_.classifier_epochs; ++epoch) {
    classifier.TrainEpoch(core_features, core_targets);
  }

  // ---- self-training: confident predictions join the training pool ----
  for (int round = 0; round < config_.self_train_rounds; ++round) {
    const la::Matrix probs = classifier.PredictProbs(features);
    std::vector<size_t> pool;
    la::Matrix pool_targets_all(num_docs, num_nodes);
    for (size_t d = 0; d < num_docs; ++d) {
      bool any = false;
      for (int leaf : tree_.Leaves()) {
        if (probs.At(d, static_cast<size_t>(leaf)) >
            static_cast<float>(config_.self_train_threshold)) {
          for (int anc : tree_.WithAncestors(leaf)) {
            pool_targets_all.At(d, static_cast<size_t>(anc)) = 1.0f;
          }
          any = true;
        }
      }
      if (any) {
        pool.push_back(d);
      } else if (has_core[d]) {
        // Keep the relevance-derived core targets for unconfident docs.
        pool.push_back(d);
        pool_targets_all.SetRow(d, targets.RowVec(d));
      }
    }
    if (pool.empty()) break;
    la::Matrix pool_features(pool.size(), vocab_size);
    la::Matrix pool_targets(pool.size(), num_nodes);
    for (size_t i = 0; i < pool.size(); ++i) {
      pool_features.SetRow(i, features.RowVec(pool[i]));
      pool_targets.SetRow(i, pool_targets_all.RowVec(pool[i]));
    }
    for (int epoch = 0; epoch < 4; ++epoch) {
      classifier.TrainEpoch(pool_features, pool_targets);
    }
  }

  // ---- final predictions ----
  Result result;
  result.predicted.resize(num_docs);
  result.ranked.resize(num_docs);
  const la::Matrix probs = classifier.PredictProbs(features);
  for (size_t d = 0; d < num_docs; ++d) {
    std::vector<std::pair<float, int>> scored;
    for (size_t n = 0; n < num_nodes; ++n) {
      scored.emplace_back(probs.At(d, n), static_cast<int>(n));
    }
    std::sort(scored.rbegin(), scored.rend());
    for (const auto& [score, node] : scored) {
      result.ranked[d].push_back(node);
    }
    // Leaf-level decisions: a leaf is predicted when it clears both the
    // absolute threshold and half the doc's best leaf probability;
    // ancestors are implied. (Internal nodes accumulate their
    // descendants' probability mass during training, so raw thresholding
    // over-selects them.)
    float best_leaf_prob = 0.0f;
    int best_leaf = tree_.Leaves()[0];
    for (int leaf : tree_.Leaves()) {
      const float p = probs.At(d, static_cast<size_t>(leaf));
      if (p > best_leaf_prob) {
        best_leaf_prob = p;
        best_leaf = leaf;
      }
    }
    std::set<int> predicted;
    for (int leaf : tree_.Leaves()) {
      const float p = probs.At(d, static_cast<size_t>(leaf));
      if (p > config_.predict_threshold && p > 0.45f * best_leaf_prob) {
        for (int anc : tree_.WithAncestors(leaf)) predicted.insert(anc);
      }
    }
    if (predicted.empty()) {
      for (int anc : tree_.WithAncestors(best_leaf)) {
        predicted.insert(anc);
      }
    }
    result.predicted[d].assign(predicted.begin(), predicted.end());
  }
  return result;
}

}  // namespace stm::core
