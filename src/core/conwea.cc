#include "core/conwea.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "cluster/cluster.h"
#include "common/check.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "nn/text_classifier.h"
#include "plm/encode_cache.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace stm::core {

ConWea::ConWea(const text::Corpus& corpus, plm::MiniLm* model,
               const ConWeaConfig& config)
    : corpus_(corpus), model_(model), config_(config) {
  STM_CHECK(model != nullptr);
}

std::vector<float> ConWea::ContextVector(size_t doc, size_t pos) {
  return ContextVectors({{doc, pos}})[0];
}

std::vector<std::vector<float>> ConWea::ContextVectors(
    const std::vector<std::pair<size_t, size_t>>& occurrences) {
  // Window around each occurrence, sized to the model's max sequence.
  const size_t max_seq = model_->config().max_seq;
  const size_t half = max_seq / 2;
  std::vector<std::vector<int32_t>> windows;
  std::vector<size_t> offsets;
  windows.reserve(occurrences.size());
  offsets.reserve(occurrences.size());
  for (const auto& [doc, pos] : occurrences) {
    const auto& tokens = corpus_.docs()[doc].tokens;
    STM_CHECK_LT(pos, tokens.size());
    const size_t begin = pos > half ? pos - half : 0;
    const size_t end = std::min(tokens.size(), begin + max_seq);
    windows.emplace_back(
        tokens.begin() + static_cast<std::ptrdiff_t>(begin),
        tokens.begin() + static_cast<std::ptrdiff_t>(end));
    offsets.push_back(pos - begin);
  }
  const std::vector<la::Matrix> hiddens = model_->EncodeBatch(windows);
  std::vector<std::vector<float>> vectors;
  vectors.reserve(occurrences.size());
  for (size_t i = 0; i < hiddens.size(); ++i) {
    vectors.push_back(hiddens[i].RowVec(offsets[i]));
  }
  return vectors;
}

ConWea::SenseFilter ConWea::FilterSenses(
    int32_t word, size_t c,
    const std::vector<std::vector<float>>& class_centroids) {
  SenseFilter filter;
  filter.word = word;
  const auto occurrences =
      corpus_.Occurrences(word, config_.max_occurrences);
  if (occurrences.empty()) return filter;

  if (!config_.enable_contextualization || occurrences.size() < 8) {
    filter.accepted = occurrences;
    return filter;
  }

  // Contextual vectors for each occurrence, one batched encoding pass.
  const std::vector<std::vector<float>> context = ContextVectors(occurrences);
  la::Matrix vectors(occurrences.size(), model_->config().dim);
  for (size_t i = 0; i < occurrences.size(); ++i) {
    vectors.SetRow(i, context[i]);
  }

  cluster::KMeansOptions options;
  options.k = config_.senses;
  options.spherical = true;
  options.seed = config_.seed + static_cast<uint64_t>(word);
  const cluster::KMeansResult clusters = cluster::KMeans(vectors, options);
  const double quality = cluster::Silhouette(vectors, clusters.assignment,
                                             config_.senses);
  if (quality < config_.sense_margin) {
    // Single dominant sense: keep everything.
    filter.accepted = occurrences;
    return filter;
  }

  size_t chosen = 0;
  if (config_.class_aware_senses) {
    // Sense whose centroid is closest to the class's context centroid
    // (batched top-1; equal scores keep the lowest sense, like the old
    // first-max scan).
    la::Matrix query(1, model_->config().dim);
    query.SetRow(0, class_centroids[c]);
    const std::vector<std::vector<ann::Neighbor>> top =
        ann::TopKSimilar(query, clusters.centroids, 1);
    chosen = top[0][0].id;
  } else {
    // Generic WSD stand-in: majority sense regardless of class.
    std::vector<size_t> counts(config_.senses, 0);
    for (int a : clusters.assignment) counts[static_cast<size_t>(a)]++;
    chosen = static_cast<size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  }
  for (size_t i = 0; i < occurrences.size(); ++i) {
    if (clusters.assignment[i] == static_cast<int>(chosen)) {
      filter.accepted.push_back(occurrences[i]);
    }
  }
  return filter;
}

std::vector<int> ConWea::Run(const text::WeakSupervision& supervision) {
  const size_t num_classes = corpus_.num_labels();
  STM_CHECK_EQ(supervision.class_keywords.size(), num_classes);
  seeds_ = supervision.class_keywords;

  // Seed words recur across iterations (and across classes), so their
  // context windows are re-encoded every round; a scoped cache makes each
  // distinct window cost one encode for the whole run.
  plm::ScopedEncodeCache encode_cache(model_);

  std::vector<int> predictions(corpus_.num_docs(), 0);
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    // ---- class context centroids from current seeds ----
    std::vector<std::vector<float>> centroids(
        num_classes, std::vector<float>(model_->config().dim, 0.0f));
    if (config_.enable_contextualization) {
      for (size_t c = 0; c < num_classes; ++c) {
        std::vector<std::pair<size_t, size_t>> class_occurrences;
        for (int32_t word : seeds_[c]) {
          const auto occurrences = corpus_.Occurrences(word, 10);
          class_occurrences.insert(class_occurrences.end(),
                                   occurrences.begin(), occurrences.end());
        }
        // One batched pass per class; the accumulation order matches the
        // old per-occurrence loop, so centroids are unchanged.
        for (const auto& vec : ContextVectors(class_occurrences)) {
          la::Axpy(1.0f, vec.data(), centroids[c].data(), vec.size());
        }
        if (!class_occurrences.empty()) {
          la::NormalizeInPlace(centroids[c].data(), centroids[c].size());
        }
      }
    }

    // ---- sense-filtered seed evidence per document ----
    la::Matrix evidence(corpus_.num_docs(), num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      for (int32_t word : seeds_[c]) {
        const SenseFilter filter = FilterSenses(word, c, centroids);
        for (const auto& [doc, pos] : filter.accepted) {
          (void)pos;
          evidence.At(doc, c) += 1.0f;
        }
      }
    }

    // ---- pseudo labels ----
    std::vector<std::vector<int32_t>> train_docs;
    std::vector<int> train_labels;
    for (size_t d = 0; d < corpus_.num_docs(); ++d) {
      const float* row = evidence.Row(d);
      const size_t best = static_cast<size_t>(
          std::max_element(row, row + num_classes) - row);
      if (row[best] >= config_.min_seed_hits) {
        // Require a margin over the runner-up to reduce noise.
        float second = -1.0f;
        for (size_t c = 0; c < num_classes; ++c) {
          if (c != best) second = std::max(second, row[c]);
        }
        if (row[best] > second) {
          train_docs.push_back(corpus_.docs()[d].tokens);
          train_labels.push_back(static_cast<int>(best));
        }
      }
    }
    if (train_docs.empty()) break;

    // ---- classifier ----
    nn::ClassifierConfig clf_config;
    clf_config.vocab_size = corpus_.vocab().size();
    clf_config.num_classes = num_classes;
    clf_config.seed = config_.seed + static_cast<uint64_t>(iteration);
    auto classifier = std::make_shared<nn::BowLogRegClassifier>(clf_config);
    classifier->Fit(train_docs, train_labels, config_.classifier_epochs);
    std::vector<std::vector<int32_t>> all_docs;
    for (const auto& doc : corpus_.docs()) all_docs.push_back(doc.tokens);
    predictions = classifier->Predict(all_docs);
    classifier_ = std::move(classifier);

    // ---- comparative seed expansion ----
    if (!config_.enable_expansion ||
        iteration + 1 >= config_.iterations) {
      continue;
    }
    const size_t vocab_size = corpus_.vocab().size();
    la::Matrix class_counts(num_classes, vocab_size);
    std::vector<double> class_tokens(num_classes, 1.0);
    for (size_t d = 0; d < corpus_.num_docs(); ++d) {
      const size_t c = static_cast<size_t>(predictions[d]);
      for (int32_t id : corpus_.docs()[d].tokens) {
        if (id < text::kNumSpecialTokens) continue;
        class_counts.At(c, static_cast<size_t>(id)) += 1.0f;
        class_tokens[c] += 1.0;
      }
    }
    for (size_t c = 0; c < num_classes; ++c) {
      std::vector<std::pair<float, int32_t>> scored;
      for (size_t w = text::kNumSpecialTokens; w < vocab_size; ++w) {
        const int32_t id = static_cast<int32_t>(w);
        if (text::IsStopword(corpus_.vocab().TokenOf(id))) continue;
        if (std::find(seeds_[c].begin(), seeds_[c].end(), id) !=
            seeds_[c].end()) {
          continue;
        }
        const double in_class =
            class_counts.At(c, w) / class_tokens[c];
        double elsewhere = 1e-9;
        for (size_t o = 0; o < num_classes; ++o) {
          if (o != c) elsewhere += class_counts.At(o, w) / class_tokens[o];
        }
        if (class_counts.At(c, w) < 3.0f) continue;
        scored.emplace_back(
            static_cast<float>(in_class *
                               std::log(in_class / elsewhere + 1.0)),
            id);
      }
      const size_t keep = std::min(config_.expand_per_class, scored.size());
      std::partial_sort(scored.begin(),
                        scored.begin() + static_cast<std::ptrdiff_t>(keep),
                        scored.end(), [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      for (size_t i = 0; i < keep; ++i) {
        seeds_[c].push_back(scored[i].second);
      }
    }
  }
  return predictions;
}

}  // namespace stm::core
