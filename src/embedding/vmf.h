#ifndef STM_EMBEDDING_VMF_H_
#define STM_EMBEDDING_VMF_H_

#include <vector>

#include "common/rng.h"

namespace stm::embedding {

// Von Mises-Fisher distribution on the unit hypersphere. WeSTClass /
// WeSHClass fit one vMF per class to the seed-keyword embeddings and
// sample pseudo-document "topic directions" from it.
class VonMisesFisher {
 public:
  // Direct construction; `mu` must be unit-norm, kappa >= 0.
  VonMisesFisher(std::vector<float> mu, float kappa);

  // Maximum-likelihood fit (Banerjee et al. 2005 approximation for kappa)
  // from unit vectors. One vector yields a concentrated distribution with
  // `fallback_kappa`.
  static VonMisesFisher Fit(const std::vector<std::vector<float>>& units,
                            float fallback_kappa = 50.0f);

  // Draws a unit vector via Wood's (1994) rejection sampler.
  std::vector<float> Sample(Rng& rng) const;

  const std::vector<float>& mu() const { return mu_; }
  float kappa() const { return kappa_; }
  size_t dim() const { return mu_.size(); }

 private:
  std::vector<float> mu_;
  float kappa_;
};

}  // namespace stm::embedding

#endif  // STM_EMBEDDING_VMF_H_
