// Packed GEMM kernel library (la/gemm_kernels.h): the blocked,
// register-tiled kernels must agree with the serial scalar reference on
// every shape class (full tiles, ragged edges, degenerate dims) up to
// float reassociation, and must be bit-identical to themselves across
// thread counts. Chained-from-C accumulation (random initial C) rounds
// differently between the reference loops and the micro-kernel, so those
// checks use a tolerance; on a ZERO-filled C — the caller contract
// throughout the library — every chain is identical and the checks are
// exact. The per-tier section drives EVERY compiled micro-kernel build
// (generic/avx2/avx512/vnni) directly through
// detail::CompiledGemmKernelTiers(), since the one-time cpuid/STM_ISA
// dispatch cannot be switched in-process; full-stack STM_ISA routing is
// covered by the subprocess passes in scripts/check.sh.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "la/qgemm.h"
#include "la/workspace.h"

namespace stm::la {
namespace {

constexpr size_t kDims[] = {1, 3, 7, 8, 9, 17, 64, 65};

class GemmKernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return v;
}

// Absolute-plus-relative bound scaled by the k reductions feeding each
// output element.
void ExpectClose(const std::vector<float>& want,
                 const std::vector<float>& got, size_t k) {
  ASSERT_EQ(want.size(), got.size());
  const float tol = 1e-6f * static_cast<float>(k + 1);
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want[i], got[i], tol + tol * std::fabs(want[i]))
        << "element " << i;
  }
}

void ExpectSame(const std::vector<float>& want,
                const std::vector<float>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "element " << i;
  }
}

TEST_F(GemmKernelTest, PackedMatchesReferenceOverShapeSweep) {
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        const std::vector<float> a = RandomVec(m * k, 1 + m * 131 + k);
        const std::vector<float> b = RandomVec(k * n, 2 + k * 131 + n);
        const std::vector<float> c0 = RandomVec(m * n, 3 + m * 131 + n);

        // Plain A (m x k) times B (k x n).
        std::vector<float> want = c0;
        ReferenceGemmAcc(a.data(), b.data(), want.data(), m, k, n);
        std::vector<float> got = c0;
        PackedGemmAcc(a.data(), k, 1, b.data(), n, 1, got.data(), m, k, n);
        ExpectClose(want, got, k);

        // B^T operand: b holds an n x k matrix read with strides (1, k).
        const std::vector<float> bt = RandomVec(n * k, 4 + k * 131 + n);
        want = c0;
        ReferenceGemmBtAcc(a.data(), bt.data(), want.data(), m, k, n);
        got = c0;
        PackedGemmAcc(a.data(), k, 1, bt.data(), 1, k, got.data(), m, k, n);
        ExpectClose(want, got, k);

        // A^T operand: a holds a k x m matrix read with strides (1, m).
        const std::vector<float> at = RandomVec(k * m, 5 + m * 131 + k);
        want = c0;
        ReferenceGemmAtAcc(at.data(), b.data(), want.data(), m, k, n);
        got = c0;
        PackedGemmAcc(at.data(), 1, m, b.data(), n, 1, got.data(), m, k, n);
        ExpectClose(want, got, k);
      }
    }
  }
}

TEST_F(GemmKernelTest, AccumulateAddsOntoExistingOutput) {
  // 32^3 = 32768 ops reaches the packed path through the Gemm wrappers.
  const size_t d = 32;
  ASSERT_TRUE(UsePackedGemm(d, d, d));
  Rng rng(99);
  Matrix a(d, d), b(d, d);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    b.data()[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  }
  Matrix once, twice;
  Gemm(a, b, once, /*accumulate=*/false);
  Gemm(a, b, twice, /*accumulate=*/false);
  Gemm(a, b, twice, /*accumulate=*/true);
  for (size_t i = 0; i < once.size(); ++i) {
    ASSERT_EQ(twice.data()[i], 2.0f * once.data()[i]) << "element " << i;
  }
  // Overwrite mode really overwrites: a third non-accumulating call on
  // the dirty output reproduces the first result exactly.
  Gemm(a, b, twice, /*accumulate=*/false);
  for (size_t i = 0; i < once.size(); ++i) {
    ASSERT_EQ(twice.data()[i], once.data()[i]) << "element " << i;
  }
}

TEST_F(GemmKernelTest, BitIdenticalAcrossThreadCounts) {
  // Ragged shape: exercises partial micro-tiles and multiple row chunks.
  const size_t m = 45, k = 64, n = 70;
  const std::vector<float> a = RandomVec(m * k, 11);
  const std::vector<float> b = RandomVec(k * n, 12);
  const std::vector<float> at = RandomVec(k * m, 13);
  const std::vector<float> bt = RandomVec(n * k, 14);

  auto run_all = [&]() {
    std::vector<std::vector<float>> out(3,
                                        std::vector<float>(m * n, 0.0f));
    PackedGemmAcc(a.data(), k, 1, b.data(), n, 1, out[0].data(), m, k, n);
    PackedGemmAcc(a.data(), k, 1, bt.data(), 1, k, out[1].data(), m, k, n);
    PackedGemmAcc(at.data(), 1, m, b.data(), n, 1, out[2].data(), m, k, n);
    return out;
  };

  ThreadPool::Reset(1);
  const std::vector<std::vector<float>> base = run_all();
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ThreadPool::Reset(threads);
    const std::vector<std::vector<float>> got = run_all();
    for (size_t v = 0; v < base.size(); ++v) ExpectSame(base[v], got[v]);
  }
}

TEST_F(GemmKernelTest, DegenerateDimsAreNoOps) {
  std::vector<float> c(6, 42.0f);
  const std::vector<float> a = RandomVec(12, 7);
  PackedGemmAcc(a.data(), 2, 1, a.data(), 3, 1, c.data(), 0, 2, 3);
  PackedGemmAcc(a.data(), 0, 1, a.data(), 3, 1, c.data(), 2, 0, 3);
  for (float v : c) EXPECT_EQ(v, 42.0f);
}

TEST_F(GemmKernelTest, KernelIsaIsStable) {
  const char* isa = GemmKernelIsa();
  ASSERT_NE(isa, nullptr);
  // Repeated queries (and queries after pool resets) never change the
  // selected kernel — the dispatch is per-process, not per-thread.
  ThreadPool::Reset(2);
  EXPECT_STREQ(isa, GemmKernelIsa());
}

// ---- pre-packed B path ----

TEST_F(GemmKernelTest, PrepackedMatchesGemmAccBitwise) {
  // Both below the packed-dispatch threshold (GemmAcc runs the scalar
  // reference) and above it (GemmAcc runs the packed kernel),
  // PrepackedGemmAcc must reproduce GemmAcc's bits exactly on a
  // zero-filled C — the contract the frozen fused fp32 forward relies on
  // (plm/minilm.cc packs weights once and routes every per-document GEMM
  // through the pre-packed path regardless of shape).
  struct Shape {
    size_t m, k, n;
  };
  // The narrow shapes (n = 40, 20) exercise the width-aware freeze tier:
  // on an AVX-512 machine they pack AVX2-width panels while GemmAcc runs
  // the active tier — bitwise equality holds because both builds share
  // one FP-contraction regime.
  for (const Shape s : {Shape{3, 48, 144}, Shape{7, 24, 72},
                        Shape{45, 64, 70}, Shape{64, 64, 64},
                        Shape{9, 40, 40}, Shape{33, 64, 20}}) {
    const std::vector<float> a = RandomVec(s.m * s.k, 101 + s.m);
    const std::vector<float> b = RandomVec(s.k * s.n, 102 + s.n);
    std::vector<float> want(s.m * s.n, 0.0f);
    GemmAcc(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    const PackedBF32 packed = PackFp32B(b.data(), s.n, 1, s.k, s.n);
    EXPECT_EQ(packed.k, s.k);
    EXPECT_EQ(packed.n, s.n);
    // The width-aware freeze hint may pick a narrower same-regime tier
    // for small n; the packed operand must agree with whatever it chose.
    EXPECT_EQ(packed.panel_nr, detail::FreezeKernelsForWidth(s.n).nr);
    EXPECT_EQ(packed.tier, &detail::FreezeKernelsForWidth(s.n));
    std::vector<float> got(s.m * s.n, 0.0f);
    PrepackedGemmAcc(a.data(), s.m, packed, got.data());
    ExpectSame(want, got);
  }
}

TEST_F(GemmKernelTest, FreezeTierForNarrowWidths) {
  const auto& active = detail::ActiveGemmKernels();
  // Wide operands always pack for the active tier.
  EXPECT_EQ(&detail::FreezeKernelsForWidth(64), &active);
  EXPECT_EQ(&detail::FreezeKernelsForWidth(1024), &active);
  // Narrow operands may pick a narrower tier, but never one from another
  // FP regime and never one that pads the width more than the active
  // tier does (under a pinned STM_ISA the hint is off and the freeze tier
  // IS the active tier, which satisfies both properties trivially).
  for (const size_t n : std::vector<size_t>{1, 8, 17, 40, 63}) {
    const auto& frozen = detail::FreezeKernelsForWidth(n);
    EXPECT_STREQ(frozen.fp_regime, active.fp_regime);
    EXPECT_LE(detail::RoundUp(n, frozen.nr), detail::RoundUp(n, active.nr));
  }
}

// ---- per-tier coverage ----

constexpr size_t kTierDims[] = {1, 5, 8, 16, 17, 33};

std::vector<float> PackBFor(const detail::GemmKernelFns& fns, const float* b,
                            size_t rs, size_t cs, size_t k, size_t n) {
  const size_t npanels = detail::CeilDiv(n, fns.nr);
  std::vector<float> out(npanels * k * fns.nr, 0.0f);
  fns.pack_b(b, rs, cs, k, n, 0, npanels, out.data());
  return out;
}

TEST_F(GemmKernelTest, TierTableIsSane) {
  const auto tiers = detail::CompiledGemmKernelTiers();
  ASSERT_GE(tiers.size(), 1u);
  // The generic tier is always compiled and always runnable.
  EXPECT_STREQ(tiers.front().fns->name, "generic");
  EXPECT_TRUE(tiers.front().supported);
  for (const auto& tier : tiers) {
    ASSERT_NE(tier.fns, nullptr);
    EXPECT_GE(tier.fns->mr, size_t{4});
    EXPECT_GE(tier.fns->nr, size_t{8});
    const std::string regime = tier.fns->fp_regime;
    EXPECT_TRUE(regime == "fma" || regime == "portable") << regime;
  }
  // The active dispatch selected one of the compiled, supported tiers.
  const detail::GemmKernelFns& active = detail::ActiveGemmKernels();
  bool found = false;
  for (const auto& tier : tiers) {
    if (tier.fns == &active) found = tier.supported;
  }
  EXPECT_TRUE(found) << active.name;
}

// Every compiled, runnable tier's micro-kernel must reproduce its own
// in-TU scalar reference EXACTLY on a zero-filled C, over all three
// operand layouts and every shape class. This is the empirical anchor
// for the bit-identity claims: reference and micro-kernel share one
// MulAdd (one FP-contraction regime per TU) and one per-cell ascending-p
// chain, so from C = 0 there is nothing left to differ.
TEST_F(GemmKernelTest, EveryCompiledTierMatchesItsReferenceExactly) {
  for (const auto& tier : detail::CompiledGemmKernelTiers()) {
    if (!tier.supported) {
      GTEST_LOG_(INFO) << "skipping unsupported tier " << tier.fns->name;
      continue;
    }
    const detail::GemmKernelFns& fns = *tier.fns;
    for (size_t m : kTierDims) {
      for (size_t k : kTierDims) {
        for (size_t n : kTierDims) {
          const std::vector<float> a = RandomVec(m * k, 7 + m * 131 + k);
          const std::vector<float> b = RandomVec(k * n, 8 + k * 131 + n);
          const std::vector<float> bt = RandomVec(n * k, 9 + k * 131 + n);
          const std::vector<float> at = RandomVec(k * m, 10 + m * 131 + k);

          std::vector<float> want(m * n, 0.0f), got(m * n, 0.0f);
          fns.reference_gemm_acc(a.data(), b.data(), want.data(), m, k, n);
          std::vector<float> bp = PackBFor(fns, b.data(), n, 1, k, n);
          fns.run_rows(a.data(), k, 1, bp.data(), got.data(), k, n, 0, m);
          ExpectSame(want, got);

          std::fill(want.begin(), want.end(), 0.0f);
          std::fill(got.begin(), got.end(), 0.0f);
          fns.reference_gemm_bt_acc(a.data(), bt.data(), want.data(), m, k,
                                    n);
          bp = PackBFor(fns, bt.data(), 1, k, k, n);
          fns.run_rows(a.data(), k, 1, bp.data(), got.data(), k, n, 0, m);
          ExpectSame(want, got);

          std::fill(want.begin(), want.end(), 0.0f);
          std::fill(got.begin(), got.end(), 0.0f);
          fns.reference_gemm_at_acc(at.data(), b.data(), want.data(), m, k,
                                    n);
          bp = PackBFor(fns, b.data(), n, 1, k, n);
          fns.run_rows(at.data(), 1, m, bp.data(), got.data(), k, n, 0, m);
          ExpectSame(want, got);
        }
      }
    }
  }
}

// All FMA-regime tiers (avx2, avx512, vnni) produce identical fp32 bits:
// the per-cell chain is one accumulator over ascending p, independent of
// the micro-tile shape. (The generic/portable regime rounds multiply and
// add separately and is allowed to differ — that split is exactly what
// GemmKernelFpRegime() exposes for the encode-cache salt.)
TEST_F(GemmKernelTest, FmaTiersAgreeBitwiseOnFp32) {
  const size_t m = 37, k = 48, n = 52;
  const std::vector<float> a = RandomVec(m * k, 21);
  const std::vector<float> b = RandomVec(k * n, 22);
  std::vector<std::vector<float>> outs;
  std::vector<std::string> names;
  for (const auto& tier : detail::CompiledGemmKernelTiers()) {
    if (!tier.supported ||
        std::string(tier.fns->fp_regime) != "fma") {
      continue;
    }
    const std::vector<float> bp =
        PackBFor(*tier.fns, b.data(), n, 1, k, n);
    std::vector<float> c(m * n, 0.0f);
    tier.fns->run_rows(a.data(), k, 1, bp.data(), c.data(), k, n, 0, m);
    outs.push_back(std::move(c));
    names.push_back(tier.fns->name);
  }
  if (outs.size() < 2) {
    GTEST_LOG_(INFO) << "fewer than two runnable fma tiers; nothing to "
                        "cross-check";
    return;
  }
  for (size_t t = 1; t < outs.size(); ++t) {
    SCOPED_TRACE(names[0] + " vs " + names[t]);
    ExpectSame(outs[0], outs[t]);
  }
}

// Row-chunk boundaries never change bits, for any tier: computing rows
// [0, m) in one call or split at an arbitrary interior row yields the
// same output (each row's chain is row-local). This is what makes the
// PackedRowGrain load-balancing heuristic bits-neutral.
TEST_F(GemmKernelTest, ChunkSplitsDoNotChangeBitsOnAnyTier) {
  const size_t m = 29, k = 40, n = 44;
  const std::vector<float> a = RandomVec(m * k, 31);
  const std::vector<float> b = RandomVec(k * n, 32);
  for (const auto& tier : detail::CompiledGemmKernelTiers()) {
    if (!tier.supported) continue;
    SCOPED_TRACE(tier.fns->name);
    const std::vector<float> bp = PackBFor(*tier.fns, b.data(), n, 1, k, n);
    std::vector<float> whole(m * n, 0.0f);
    tier.fns->run_rows(a.data(), k, 1, bp.data(), whole.data(), k, n, 0, m);
    for (const size_t split : {size_t{1}, size_t{13}, size_t{28}}) {
      std::vector<float> parts(m * n, 0.0f);
      tier.fns->run_rows(a.data(), k, 1, bp.data(), parts.data(), k, n, 0,
                         split);
      tier.fns->run_rows(a.data(), k, 1, bp.data(), parts.data(), k, n,
                         split, m);
      ExpectSame(whole, parts);
    }
  }
}

// The int8 path is exact integer arithmetic plus ONE shared
// dequantization expression, so output is bit-identical across ALL
// compiled tiers — including generic vs the SIMD builds — and matches
// the public Int8GemmAcc (which quantizes A internally with the same
// scheme).
TEST_F(GemmKernelTest, Int8OutputBitIdenticalAcrossAllTiers) {
  const size_t m = 21, k = 39, n = 35;  // ragged k: partial kInt8KGroup
  const std::vector<float> a = RandomVec(m * k, 41);
  const std::vector<float> b = RandomVec(k * n, 42);
  const Int8PackedB packed = PackInt8B(b.data(), n, 1, k, n);

  // Offset-quantized A bytes, exactly as Int8GemmAcc builds them.
  std::vector<int8_t> aq(m * k);
  std::vector<float> a_scales(m);
  QuantizeRowsAbsmax(a.data(), m, k, kInt8AMax, aq.data(), a_scales.data());
  std::vector<uint8_t> abytes(m * k);
  for (size_t i = 0; i < aq.size(); ++i) {
    abytes[i] = static_cast<uint8_t>(aq[i] + kInt8AZero);
  }

  std::vector<float> want(m * n, 0.0f);
  Int8GemmAcc(a.data(), m, packed, want.data());

  for (const auto& tier : detail::CompiledGemmKernelTiers()) {
    if (!tier.supported) continue;
    SCOPED_TRACE(tier.fns->name);
    const std::vector<int8_t> panels =
        Int8PanelsForWidth(packed, tier.fns->nr);
    std::vector<float> got(m * n, 0.0f);
    tier.fns->int8_run_rows(abytes.data(), a_scales.data(), panels.data(),
                            packed.scales.data(), packed.colsums.data(),
                            got.data(), k, n, 0, m);
    ExpectSame(want, got);
  }
}

TEST_F(GemmKernelTest, WorkspaceRecyclesBuffers) {
  Workspace* ws = Workspace::ThreadLocalOrNull();
  ASSERT_NE(ws, nullptr);
  ws->Clear();
  std::vector<float> buf = ws->Acquire(1024);
  EXPECT_EQ(buf.size(), 1024u);
  const float* p = buf.data();
  ws->Release(std::move(buf));
  EXPECT_EQ(ws->cached_buffers(), 1u);
  std::vector<float> again = ws->Acquire(512);
  EXPECT_EQ(again.data(), p);  // best fit reuses the released buffer
  EXPECT_EQ(ws->cached_buffers(), 0u);
  ws->Release(std::move(again));
  ws->Clear();
  EXPECT_EQ(ws->cached_floats(), 0u);
}

}  // namespace
}  // namespace stm::la
