#ifndef STM_TEXT_CORPUS_IO_H_
#define STM_TEXT_CORPUS_IO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "text/corpus.h"

namespace stm::text {

// TSV corpus persistence so users can run the library on their own data.
//
// Format (one document per line, UTF-8, tab-separated):
//   <label-name>  <raw text>  [<meta>=<value> ...]
// A line may carry several labels separated by '|' in the first column and
// any number of trailing metadata columns ("user=u1", "tag=nlp", ...).
// Lines starting with '#' and blank lines are skipped.
//
// Label names and metadata keys/values are backslash-escaped on save
// (\\, \t, \n, \r, \p for '|', \e for '=') and unescaped on load, so
// names containing the format's structural characters round-trip exactly.
// Tokens in the text column pass through the rule-based tokenizer on load,
// so SaveTsv rejects (kInvalidArgument) any token the tokenizer would not
// reproduce verbatim — a saved corpus always reloads to an equal corpus.

// Per-load diagnostics: which input lines were rejected (1-based numbers).
struct TsvReadReport {
  size_t skipped = 0;
  std::vector<size_t> skipped_lines;
};

// Loads a corpus from `path` via `env`, building the vocabulary with the
// rule-based tokenizer and the label set from the label column (in
// first-seen order). Malformed lines are skipped and reported through
// `report`; a rejected line leaves no trace in the corpus (no phantom
// labels or vocabulary entries). kUnavailable when the file is missing.
Status LoadTsv(Env* env, const std::string& path, Corpus* corpus,
               TsvReadReport* report = nullptr);

// Writes `corpus` in the same format (tokens re-joined with spaces)
// atomically via `env`. kInvalidArgument when the corpus contains a token,
// label, or metadata entry that cannot round-trip.
Status SaveTsv(Env* env, const Corpus& corpus, const std::string& path);

// Legacy bool shims over the Status API (Env::Default()). LoadTsv returns
// false on I/O failure; malformed lines are skipped with a count reported
// through `skipped` when non-null.
bool LoadTsv(const std::string& path, Corpus* corpus,
             size_t* skipped = nullptr);
bool SaveTsv(const Corpus& corpus, const std::string& path);

}  // namespace stm::text

#endif  // STM_TEXT_CORPUS_IO_H_
