#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/self_training.h"
#include "core/westclass.h"
#include "datasets/specs.h"
#include "eval/metrics.h"
#include "graph/hin.h"
#include "nn/text_classifier.h"
#include "text/corpus_io.h"

namespace stm {
namespace {

// End-to-end user workflow: save a corpus as TSV, load it back, classify
// with weak supervision derived from the label names only.
TEST(IntegrationTest, TsvRoundTripThenWeaklySupervisedClassification) {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(41);
  spec.num_docs = 250;
  spec.pretrain_docs = 0;
  const auto data = datasets::Generate(spec);
  const std::string path = testing::TempDir() + "/integration.tsv";
  ASSERT_TRUE(text::SaveTsv(data.corpus, path));

  text::Corpus corpus;
  ASSERT_TRUE(text::LoadTsv(path, &corpus, nullptr));
  ASSERT_EQ(corpus.num_docs(), 250u);

  // Weak supervision reconstructed from the label names alone.
  text::WeakSupervision supervision;
  supervision.class_keywords.resize(corpus.num_labels());
  for (size_t c = 0; c < corpus.num_labels(); ++c) {
    supervision.class_keywords[c].push_back(
        corpus.vocab().IdOf(corpus.label_names()[c]));
  }
  core::WestClassConfig config;
  config.classifier = "bow";
  config.seed = 5;
  core::WestClass method(corpus, config);
  const auto pred = method.Run(core::Supervision::kLabels, supervision);
  EXPECT_GT(eval::Accuracy(pred, corpus.GoldLabels()), 0.7);
}

// Self-training on top of a weakly pre-trained classifier must not
// degrade, and typically improves, corpus accuracy.
TEST(IntegrationTest, SelfTrainingImprovesWeakClassifier) {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(42);
  spec.num_docs = 250;
  spec.pretrain_docs = 0;
  const auto data = datasets::Generate(spec);
  const auto gold = data.corpus.GoldLabels();

  // Weak starting point: train on 3 labeled docs per class.
  nn::ClassifierConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.num_classes = data.corpus.num_labels();
  config.seed = 3;
  nn::BowLogRegClassifier classifier(config);
  const auto labeled = datasets::SampleLabeledDocs(data.corpus, 3, 9);
  std::vector<std::vector<int32_t>> train_docs;
  std::vector<int> train_labels;
  for (size_t c = 0; c < labeled.size(); ++c) {
    for (size_t d : labeled[c]) {
      train_docs.push_back(data.corpus.docs()[d].tokens);
      train_labels.push_back(static_cast<int>(c));
    }
  }
  classifier.Fit(train_docs, train_labels, 10);

  std::vector<std::vector<int32_t>> all_docs;
  for (const auto& doc : data.corpus.docs()) all_docs.push_back(doc.tokens);
  const double before =
      eval::Accuracy(classifier.Predict(all_docs), gold);
  core::SelfTrainConfig st;
  const auto after_pred = core::SelfTrain(classifier, all_docs, st);
  const double after = eval::Accuracy(after_pred, gold);
  EXPECT_GE(after + 0.02, before);
  EXPECT_GT(after, 0.6);
}

// HIN construction with word and label nodes attached.
TEST(IntegrationTest, HinWithWordsAndLabels) {
  datasets::SyntheticSpec spec = datasets::GithubSecSpec(43);
  spec.num_docs = 120;
  spec.pretrain_docs = 0;
  const auto data = datasets::Generate(spec);
  graph::HinBuildOptions options;
  options.include_words = true;
  options.min_word_count = 4;
  options.include_labels = true;
  const auto labeled = datasets::SampleLabeledDocs(data.corpus, 4, 3);
  for (const auto& docs : labeled) {
    options.labeled_docs.insert(options.labeled_docs.end(), docs.begin(),
                                docs.end());
  }
  const graph::Hin hin = graph::BuildHin(data.corpus, options);
  // Label nodes exist and connect only to their labeled docs.
  for (size_t c = 0; c < data.corpus.num_labels(); ++c) {
    const int node =
        hin.NodeOf("label", data.corpus.label_names()[c]);
    ASSERT_GE(node, 0);
    const auto docs = hin.NeighborsOfType(node, "doc");
    EXPECT_EQ(docs.size(), labeled[c].size());
    for (int doc_node : docs) {
      EXPECT_EQ(data.corpus.docs()[static_cast<size_t>(doc_node)].labels[0],
                static_cast<int>(c));
    }
  }
  // Word nodes exist for frequent words.
  EXPECT_GE(hin.NodeOf("word", "malware"), 0);
}

}  // namespace
}  // namespace stm
