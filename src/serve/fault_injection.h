#ifndef STM_SERVE_FAULT_INJECTION_H_
#define STM_SERVE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/serve.h"

namespace stm::serve {

// Test double wrapping another Classifier — the serve-layer sibling of
// PR 3's FaultInjectingEnv (common/env.h). The serve resilience story is
// "a hook failure costs exactly its request"; this wrapper makes hook
// failures reproducible on demand so tests (tests/serve_chaos_test.cc)
// can prove it without hand-writing a bespoke broken classifier each
// time.
//
// Faults are armed by the test and consumed by Classify calls; unarmed
// calls delegate untouched, so correct answers stay bit-identical to the
// wrapped classifier's. Arming and accounting are mutex-guarded (drain
// workers call Classify concurrently); injected sleeps happen OUTSIDE
// the lock so a slow call never serializes the other workers' faults.
class FaultInjectingClassifier : public Classifier {
 public:
  explicit FaultInjectingClassifier(std::shared_ptr<const Classifier> base)
      : base_(std::move(base)) {}

  // Arms the next `count` Classify calls to throw std::runtime_error.
  void ThrowNext(int count = 1);

  // Every n-th call (1-based; n <= 0 disarms) throws. Deterministic under
  // a single drain worker; under several it still injects exactly
  // 1/n of calls, just not at predictable indices.
  void ThrowEveryNth(int n);

  // Arms the next `count` calls to sleep `ms` before delegating —
  // simulates a hung/slow hook for deadline and watchdog tests.
  void SleepNext(double ms, int count = 1);

  // Accounting.
  uint64_t calls() const;
  uint64_t injected_throws() const;
  uint64_t injected_sleeps() const;

  // Classifier interface: everything delegates except the faults.
  std::string name() const override { return base_->name(); }
  size_t num_classes() const override { return base_->num_classes(); }
  Input input() const override { return base_->input(); }
  Prediction Classify(const std::vector<int32_t>& ids, const float* pooled,
                      const la::Matrix* hidden) const override;

 private:
  const std::shared_ptr<const Classifier> base_;

  mutable std::mutex mu_;
  mutable int throw_next_ = 0;
  int throw_every_nth_ = 0;
  mutable double sleep_ms_ = 0.0;
  mutable int sleep_next_ = 0;
  mutable uint64_t calls_ = 0;
  mutable uint64_t injected_throws_ = 0;
  mutable uint64_t injected_sleeps_ = 0;
};

}  // namespace stm::serve

#endif  // STM_SERVE_FAULT_INJECTION_H_
