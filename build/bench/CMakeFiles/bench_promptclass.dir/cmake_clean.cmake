file(REMOVE_RECURSE
  "CMakeFiles/bench_promptclass.dir/bench_promptclass.cc.o"
  "CMakeFiles/bench_promptclass.dir/bench_promptclass.cc.o.d"
  "bench_promptclass"
  "bench_promptclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_promptclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
