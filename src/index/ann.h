#ifndef STM_INDEX_ANN_H_
#define STM_INDEX_ANN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "la/matrix.h"

namespace stm::ann {

// Top-k retrieval over dense embedding matrices, replacing the scalar
// per-pair la::Cosine scans in the core methods. Two tiers:
//
//  * Brute force (the default, and the only tier TopKSimilar uses): both
//    sides are row-normalized once, similarities are computed as blocked
//    GemmBt panels through the shared kernel library, and each query's
//    top-k is heap-selected while scanning base ids in ascending order.
//    Because every (query, base) dot product folds the k extent in a
//    fixed order through one MulAdd regime (see DESIGN.md 5d), a score is
//    bit-identical no matter how the call is batched, blocked, or
//    threaded — the ranking matches the scalar scans it replaces, with
//    deterministic ties (higher score first, then lower id).
//
//  * LSH (Index only): signed random-hyperplane sketches packed into
//    uint64 words; candidate generation ranks base rows by Hamming
//    distance via popcount, then the top `rerank` candidates are reranked
//    with exact dot products computed by the same kernels as the brute
//    tier. Sublinear in work per query (bits*dim + rows*words versus
//    rows*dim multiplies) and deterministic for a fixed seed, but
//    approximate: recall is guarded by tests/ann_test.cc and bench_ann.
//
// Tier selection is STM_ANN=off|auto|lsh; `auto` (the default) enables
// LSH only when the base has at least `auto_min_rows` rows, so the small
// class-representation bases every core method scores against stay on
// the exact tier and only genuinely large bases (vocabulary tables,
// million-document corpora) pay the approximation.

enum class AnnMode {
  kOff,   // always brute force
  kAuto,  // LSH when base rows >= auto_min_rows
  kLsh,   // always LSH
};

struct IndexOptions {
  AnnMode mode = AnnMode::kAuto;
  // Hyperplanes per sketch; rounded up to a multiple of 64 at Build.
  size_t bits = 128;
  // Candidates per query that survive Hamming selection into the exact
  // rerank (raised to k at query time when k is larger).
  size_t rerank = 128;
  // `auto` cutover: bases smaller than this stay exact.
  size_t auto_min_rows = 16384;
  // Hyperplane RNG seed; part of the index identity.
  uint64_t seed = 0x414E4E31ULL;
};

// Options from the STM_ANN, STM_ANN_BITS, STM_ANN_RERANK and
// STM_ANN_AUTO_ROWS knobs (validated via common/env_parse; a malformed
// value warns once and keeps the default).
IndexOptions IndexOptionsFromEnv();

struct Neighbor {
  uint32_t id = 0;
  float score = 0.0f;
};

// Exact batched top-k: for every query row, the `k` base rows with the
// highest cosine similarity (computed as dot products of row-normalized
// copies), sorted by descending score with ascending-id ties. `k` is
// clamped to base.rows(). Output is bit-identical for any STM_NUM_THREADS
// and any permutation of the query rows. Zero rows score 0 against
// everything, matching la::Cosine's zero-vector contract.
std::vector<std::vector<Neighbor>> TopKSimilar(const la::Matrix& queries,
                                               const la::Matrix& base,
                                               size_t k);

// Full similarity panel (queries.rows() x base.rows()) over row-normalized
// copies of both sides, for call sites that need every score rather than a
// top-k (attention weights, sampling temperatures). Same blocked kernels
// and bit-identity guarantees as TopKSimilar.
la::Matrix SimilarityPanel(const la::Matrix& queries, const la::Matrix& base);

// Scores one already-normalized query row against every row of an
// already-normalized base — the single-request serving path. `scores`
// must hold base.rows() floats. Bit-identical to the corresponding row of
// SimilarityPanel over the raw matrices when `query` / `base` were
// normalized exactly once.
void ScoreNormalized(const float* query, const la::Matrix& base,
                     float* scores);

// A reusable index over one base matrix. Build normalizes (a copy of) the
// base once and, when the LSH tier is selected, sketches it; queries then
// pay O(rows * dim) GEMM work on the brute tier or
// O(bits * dim + rows * words + rerank * dim) on the LSH tier.
class Index {
 public:
  Index() = default;

  static Index Build(const la::Matrix& base,
                     const IndexOptions& options = IndexOptionsFromEnv());

  size_t rows() const { return base_.rows(); }
  size_t dim() const { return base_.cols(); }
  bool lsh_enabled() const { return use_lsh_; }
  const IndexOptions& options() const { return options_; }

  // Top-k per query row; same contract as TopKSimilar on the brute tier.
  // On the LSH tier results are deterministic (thread count, query order)
  // but approximate.
  std::vector<std::vector<Neighbor>> TopK(const la::Matrix& queries,
                                          size_t k) const;

  // Single-query convenience; `query` has dim() entries.
  std::vector<Neighbor> TopK1(const float* query, size_t k) const;

  // ---- durable "STMA" artifact (framed container, see common/serialize)
  // so a large index is built once and loaded at serve startup. ----
  Status Save(Env* env, const std::string& path) const;
  static StatusOr<Index> Load(Env* env, const std::string& path);

  // Loads `path` when it exists and matches `base`'s shape; otherwise
  // builds from `base` and saves. A file that exists but will not load
  // (torn write, bit rot) is quarantined as <path>.corrupt and rebuilt —
  // never trusted, never fatal.
  static Index LoadOrBuild(Env* env, const std::string& path,
                           const la::Matrix& base,
                           const IndexOptions& options = IndexOptionsFromEnv());

 private:
  friend class IndexBuilder;

  IndexOptions options_;
  bool use_lsh_ = false;
  la::Matrix base_;    // row-normalized copy of the build input
  la::Matrix planes_;  // bits x dim gaussian hyperplanes (LSH tier only)
  std::vector<uint64_t> codes_;  // rows() * words_ packed sign sketches
  size_t words_ = 0;             // uint64 words per sketch (= bits / 64)
};

// Incremental index construction for out-of-core bases: rows arrive in
// order (e.g. one encoded corpus shard at a time) and are normalized and
// sketched as they land, so peak memory is the finished index plus the
// caller's current block — never a second full copy of the base next to
// the raw encodings. Normalization is per-row and the sketch projections
// are per-row GemmBt products (batch-invariant by the kernel contract),
// so Finish() is bit-identical to Index::Build on the concatenated rows
// at any block size; Build itself delegates here. The total row count
// must be known up front (it decides the LSH cutover and sizes the
// base/code storage exactly once).
class IndexBuilder {
 public:
  IndexBuilder(size_t dim, size_t total_rows,
               const IndexOptions& options = IndexOptionsFromEnv());

  // Appends `count` raw rows of dim() floats each (row-major,
  // unnormalized). Rows must arrive in base-id order.
  void Add(const float* rows, size_t count);
  void Add(const la::Matrix& rows);

  size_t added() const { return added_; }

  // Requires exactly total_rows rows added. The builder is spent after.
  Index Finish();

 private:
  void Sketch(size_t begin, size_t end);

  Index index_;
  size_t total_rows_ = 0;
  size_t added_ = 0;
  bool finished_ = false;
};

}  // namespace stm::ann

#endif  // STM_INDEX_ANN_H_
