#include <gtest/gtest.h>

#include <map>

#include "core/pseudo_docs.h"
#include "datasets/specs.h"
#include "embedding/sgns.h"
#include "text/tokenizer.h"

namespace stm::core {
namespace {

struct Fixture {
  datasets::SyntheticDataset data;
  std::unique_ptr<embedding::WordEmbeddings> embeddings;
  std::vector<double> background;
};

Fixture MakeFixture() {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(31);
  spec.num_docs = 250;
  spec.pretrain_docs = 0;
  Fixture fixture;
  fixture.data = datasets::Generate(spec);
  std::vector<std::vector<int32_t>> docs;
  for (const auto& doc : fixture.data.corpus.docs()) {
    docs.push_back(doc.tokens);
  }
  embedding::SgnsConfig sgns;
  sgns.epochs = 5;
  fixture.embeddings = std::make_unique<embedding::WordEmbeddings>(
      embedding::WordEmbeddings::Train(
          docs, fixture.data.corpus.vocab().size(), sgns));
  const auto counts = fixture.data.corpus.TokenCounts();
  fixture.background.assign(counts.size(), 0.0);
  for (size_t i = text::kNumSpecialTokens; i < counts.size(); ++i) {
    fixture.background[i] = static_cast<double>(counts[i]);
  }
  return fixture;
}

TEST(PseudoDocGeneratorTest, DocsHaveRequestedShape) {
  Fixture fixture = MakeFixture();
  PseudoDocOptions options;
  options.docs_per_class = 12;
  options.doc_len = 25;
  PseudoDocGenerator generator(fixture.embeddings.get(),
                               fixture.background, options);
  Rng rng(3);
  const auto docs =
      generator.Generate(fixture.data.supervision.class_keywords[0], rng);
  ASSERT_EQ(docs.size(), 12u);
  for (const auto& doc : docs) EXPECT_EQ(doc.size(), 25u);
}

TEST(PseudoDocGeneratorTest, VmfDocsAreClassTopical) {
  Fixture fixture = MakeFixture();
  PseudoDocOptions options;
  options.docs_per_class = 20;
  options.doc_len = 30;
  PseudoDocGenerator generator(fixture.embeddings.get(),
                               fixture.background, options);
  Rng rng(4);
  // Class 1 = sports. Most non-background tokens should be sports-theme.
  const auto docs =
      generator.Generate(fixture.data.supervision.class_keywords[1], rng);
  size_t sports_like = 0;
  size_t total = 0;
  const auto& vocab = fixture.data.corpus.vocab();
  for (const auto& doc : docs) {
    for (int32_t id : doc) {
      const std::string& token = vocab.TokenOf(id);
      if (token.rfind("bg", 0) == 0 || text::IsStopword(token)) continue;
      ++total;
      if (token.rfind("sports", 0) == 0 || token == "game" ||
          token == "team" || token == "championship" ||
          token.rfind("amb", 0) == 0) {
        ++sports_like;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(sports_like) / total, 0.5);
}

TEST(PseudoDocGeneratorTest, SeedsAppearInVmfDocs) {
  // Dispersed seed sets must still surface in the generated documents
  // (the anchoring behaviour that fixes the DOCS supervision mode).
  Fixture fixture = MakeFixture();
  PseudoDocOptions options;
  options.docs_per_class = 30;
  options.doc_len = 30;
  PseudoDocGenerator generator(fixture.embeddings.get(),
                               fixture.background, options);
  Rng rng(5);
  std::vector<int32_t> seeds = fixture.data.supervision.class_keywords[2];
  const auto docs = generator.Generate(seeds, rng);
  std::map<int32_t, int> counts;
  for (const auto& doc : docs) {
    for (int32_t id : doc) counts[id]++;
  }
  size_t seeds_present = 0;
  for (int32_t id : seeds) seeds_present += counts[id] > 0;
  EXPECT_GE(seeds_present * 2, seeds.size());
}

TEST(PseudoDocGeneratorTest, NoVmfModeUsesSeedsOnly) {
  Fixture fixture = MakeFixture();
  PseudoDocOptions options;
  options.docs_per_class = 10;
  options.doc_len = 20;
  options.enable_vmf = false;
  options.background_alpha = 0.0f;
  PseudoDocGenerator generator(fixture.embeddings.get(),
                               fixture.background, options);
  Rng rng(6);
  const std::vector<int32_t> seeds =
      fixture.data.supervision.class_keywords[3];
  const auto docs = generator.Generate(seeds, rng);
  for (const auto& doc : docs) {
    for (int32_t id : doc) {
      EXPECT_NE(std::find(seeds.begin(), seeds.end(), id), seeds.end());
    }
  }
}

}  // namespace
}  // namespace stm::core
