#ifndef STM_COMMON_HASH_H_
#define STM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace stm {

// FNV-1a 64-bit hash; used for cache keys and deterministic bucketing.
inline uint64_t Fnv1a(std::string_view data,
                      uint64_t seed = 0xCBF29CE484222325ULL) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// FNV-1a over an arbitrary byte span (cache keys over binary payloads
// such as token-id arrays).
inline uint64_t Fnv1aBytes(const void* data, size_t size,
                           uint64_t seed = 0xCBF29CE484222325ULL) {
  return Fnv1a(
      std::string_view(static_cast<const char*>(data), size), seed);
}

// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

// Hex rendering of a hash for use in file names.
std::string HashToHex(uint64_t hash);

// CRC32C (Castagnoli polynomial), the checksum protecting on-disk artifact
// payloads (see common/serialize.h). Software table implementation; call
// with `crc` = a previous return value to checksum data in chunks.
uint32_t Crc32c(std::string_view data, uint32_t crc = 0);

}  // namespace stm

#endif  // STM_COMMON_HASH_H_
