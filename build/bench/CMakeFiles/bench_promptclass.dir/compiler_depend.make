# Empty compiler generated dependencies file for bench_promptclass.
# This may be replaced when dependencies are built.
