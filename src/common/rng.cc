#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace stm {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  STM_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  STM_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t value = Next64();
  while (value >= limit) value = Next64();
  return value % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gamma(double shape) {
  STM_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double g = Gamma(shape + 1.0);
    double u = Uniform();
    while (u <= 1e-300) u = Uniform();
    return g * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  return x / (x + y);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  STM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    STM_CHECK_GE(w, 0.0);
    total += w;
  }
  STM_CHECK_GT(total, 0.0) << "all discrete weights are zero";
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  STM_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index array.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next64()); }

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  STM_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    STM_CHECK_GE(w, 0.0);
    total += w;
  }
  STM_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;
    small.pop_back();
  }
}

size_t AliasSampler::Sample(Rng& rng) const {
  STM_CHECK(!prob_.empty());
  const size_t i = rng.UniformInt(prob_.size());
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace stm
