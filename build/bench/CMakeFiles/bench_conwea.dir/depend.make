# Empty dependencies file for bench_conwea.
# This may be replaced when dependencies are built.
