
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/stm.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/stm.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/stm.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/stm.dir/common/hash.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/stm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/stm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serialize.cc" "src/CMakeFiles/stm.dir/common/serialize.cc.o" "gcc" "src/CMakeFiles/stm.dir/common/serialize.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/stm.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/stm.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/stm.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/conwea.cc" "src/CMakeFiles/stm.dir/core/conwea.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/conwea.cc.o.d"
  "/root/repo/src/core/lotclass.cc" "src/CMakeFiles/stm.dir/core/lotclass.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/lotclass.cc.o.d"
  "/root/repo/src/core/metacat.cc" "src/CMakeFiles/stm.dir/core/metacat.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/metacat.cc.o.d"
  "/root/repo/src/core/micol.cc" "src/CMakeFiles/stm.dir/core/micol.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/micol.cc.o.d"
  "/root/repo/src/core/promptclass.cc" "src/CMakeFiles/stm.dir/core/promptclass.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/promptclass.cc.o.d"
  "/root/repo/src/core/pseudo_docs.cc" "src/CMakeFiles/stm.dir/core/pseudo_docs.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/pseudo_docs.cc.o.d"
  "/root/repo/src/core/self_training.cc" "src/CMakeFiles/stm.dir/core/self_training.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/self_training.cc.o.d"
  "/root/repo/src/core/taxoclass.cc" "src/CMakeFiles/stm.dir/core/taxoclass.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/taxoclass.cc.o.d"
  "/root/repo/src/core/weshclass.cc" "src/CMakeFiles/stm.dir/core/weshclass.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/weshclass.cc.o.d"
  "/root/repo/src/core/westclass.cc" "src/CMakeFiles/stm.dir/core/westclass.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/westclass.cc.o.d"
  "/root/repo/src/core/xclass.cc" "src/CMakeFiles/stm.dir/core/xclass.cc.o" "gcc" "src/CMakeFiles/stm.dir/core/xclass.cc.o.d"
  "/root/repo/src/datasets/specs.cc" "src/CMakeFiles/stm.dir/datasets/specs.cc.o" "gcc" "src/CMakeFiles/stm.dir/datasets/specs.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/CMakeFiles/stm.dir/datasets/synthetic.cc.o" "gcc" "src/CMakeFiles/stm.dir/datasets/synthetic.cc.o.d"
  "/root/repo/src/embedding/sgns.cc" "src/CMakeFiles/stm.dir/embedding/sgns.cc.o" "gcc" "src/CMakeFiles/stm.dir/embedding/sgns.cc.o.d"
  "/root/repo/src/embedding/vmf.cc" "src/CMakeFiles/stm.dir/embedding/vmf.cc.o" "gcc" "src/CMakeFiles/stm.dir/embedding/vmf.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/stm.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/stm.dir/eval/metrics.cc.o.d"
  "/root/repo/src/graph/hin.cc" "src/CMakeFiles/stm.dir/graph/hin.cc.o" "gcc" "src/CMakeFiles/stm.dir/graph/hin.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/CMakeFiles/stm.dir/la/matrix.cc.o" "gcc" "src/CMakeFiles/stm.dir/la/matrix.cc.o.d"
  "/root/repo/src/nn/feature_classifier.cc" "src/CMakeFiles/stm.dir/nn/feature_classifier.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/feature_classifier.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/stm.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/stm.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/stm.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/stm.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/stm.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/text_classifier.cc" "src/CMakeFiles/stm.dir/nn/text_classifier.cc.o" "gcc" "src/CMakeFiles/stm.dir/nn/text_classifier.cc.o.d"
  "/root/repo/src/plm/minilm.cc" "src/CMakeFiles/stm.dir/plm/minilm.cc.o" "gcc" "src/CMakeFiles/stm.dir/plm/minilm.cc.o.d"
  "/root/repo/src/plm/pair_scorer.cc" "src/CMakeFiles/stm.dir/plm/pair_scorer.cc.o" "gcc" "src/CMakeFiles/stm.dir/plm/pair_scorer.cc.o.d"
  "/root/repo/src/taxonomy/taxonomy.cc" "src/CMakeFiles/stm.dir/taxonomy/taxonomy.cc.o" "gcc" "src/CMakeFiles/stm.dir/taxonomy/taxonomy.cc.o.d"
  "/root/repo/src/text/corpus.cc" "src/CMakeFiles/stm.dir/text/corpus.cc.o" "gcc" "src/CMakeFiles/stm.dir/text/corpus.cc.o.d"
  "/root/repo/src/text/corpus_io.cc" "src/CMakeFiles/stm.dir/text/corpus_io.cc.o" "gcc" "src/CMakeFiles/stm.dir/text/corpus_io.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/stm.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/stm.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/stm.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/stm.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/stm.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/stm.dir/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
