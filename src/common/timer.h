#ifndef STM_COMMON_TIMER_H_
#define STM_COMMON_TIMER_H_

#include <chrono>

namespace stm {

// Simple wall-clock timer for progress reporting in benches.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  // Seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stm

#endif  // STM_COMMON_TIMER_H_
