#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "la/matrix.h"
#include "la/workspace.h"
#include "nn/infer_ops.h"

namespace stm::nn {

namespace {

// Builds an op node over `parents` with `shape`. If any parent requires a
// gradient, marks the node and installs `backward`.
Tensor MakeOp(std::vector<size_t> shape, std::vector<Tensor> parents,
              std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = la::AcquireZeroedVec(ShapeSize(shape));
  node->shape = std::move(shape);
  bool needs_grad = false;
  node->parents.reserve(parents.size());
  for (const Tensor& p : parents) {
    STM_CHECK(p.defined());
    node->parents.push_back(p.ptr());
    needs_grad = needs_grad || p.node()->requires_grad;
  }
  if (needs_grad) {
    node->requires_grad = true;
    node->backward = std::move(backward);
  }
  return Tensor(std::move(node));
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

// Forward value shared with the inference path (nn/infer_ops.h) so the
// quantized encoder applies the exact same activation.
float GeluValue(float x) { return GeluScalar(x); }

float GeluGrad(float x) {
  constexpr float kC = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = kC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kC * (1.0f + 3.0f * 0.044715f * x * x);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  STM_CHECK(SameShape(a, b));
  Tensor out = MakeOp(a.shape(), {a, b}, [](Node& node) {
    for (int p = 0; p < 2; ++p) {
      Node* parent = node.parents[static_cast<size_t>(p)].get();
      if (!parent->requires_grad) continue;
      parent->EnsureGrad();
      for (size_t i = 0; i < node.grad.size(); ++i) {
        parent->grad[i] += node.grad[i];
      }
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = a.value()[i] + b.value()[i];
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  STM_CHECK(SameShape(a, b));
  Tensor out = MakeOp(a.shape(), {a, b}, [](Node& node) {
    Node* pa = node.parents[0].get();
    Node* pb = node.parents[1].get();
    if (pa->requires_grad) {
      pa->EnsureGrad();
      for (size_t i = 0; i < node.grad.size(); ++i) {
        pa->grad[i] += node.grad[i];
      }
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      for (size_t i = 0; i < node.grad.size(); ++i) {
        pb->grad[i] -= node.grad[i];
      }
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = a.value()[i] - b.value()[i];
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  STM_CHECK(SameShape(a, b));
  Tensor out = MakeOp(a.shape(), {a, b}, [](Node& node) {
    Node* pa = node.parents[0].get();
    Node* pb = node.parents[1].get();
    if (pa->requires_grad) {
      pa->EnsureGrad();
      for (size_t i = 0; i < node.grad.size(); ++i) {
        pa->grad[i] += node.grad[i] * pb->value[i];
      }
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      for (size_t i = 0; i < node.grad.size(); ++i) {
        pb->grad[i] += node.grad[i] * pa->value[i];
      }
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = a.value()[i] * b.value()[i];
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = MakeOp(a.shape(), {a}, [s](Node& node) {
    Node* pa = node.parents[0].get();
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      pa->grad[i] += s * node.grad[i];
    }
  });
  for (size_t i = 0; i < out.size(); ++i) out.value()[i] = s * a.value()[i];
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = MakeOp(a.shape(), {a}, [](Node& node) {
    Node* pa = node.parents[0].get();
    if (!pa->requires_grad) return;
    pa->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      pa->grad[i] += node.grad[i];
    }
  });
  for (size_t i = 0; i < out.size(); ++i) out.value()[i] = a.value()[i] + s;
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  STM_CHECK_EQ(bias.rank(), 1u);
  const size_t d = bias.dim(0);
  STM_CHECK_EQ(x.size() % d, 0u);
  const size_t n = x.size() / d;
  Tensor out = MakeOp(x.shape(), {x, bias}, [n, d](Node& node) {
    Node* px = node.parents[0].get();
    Node* pb = node.parents[1].get();
    if (px->requires_grad) {
      px->EnsureGrad();
      for (size_t i = 0; i < node.grad.size(); ++i) {
        px->grad[i] += node.grad[i];
      }
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      for (size_t r = 0; r < n; ++r) {
        const float* g = node.grad.data() + r * d;
        for (size_t j = 0; j < d; ++j) pb->grad[j] += g[j];
      }
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float* xr = x.value().data() + r * d;
    float* o = out.value().data() + r * d;
    for (size_t j = 0; j < d; ++j) o[j] = xr[j] + bias.value()[j];
  }
  return out;
}

Tensor AddConstant(const Tensor& x, const std::vector<float>& c) {
  STM_CHECK_EQ(x.size(), c.size());
  Tensor out = MakeOp(x.shape(), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      px->grad[i] += node.grad[i];
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = x.value()[i] + c[i];
  }
  return out;
}

Tensor AddConstantBroadcast(const Tensor& x, const std::vector<float>& c,
                            size_t repeat, size_t block) {
  STM_CHECK_GT(repeat, 0u);
  STM_CHECK_GT(block, 0u);
  STM_CHECK_EQ(c.size() % block, 0u);
  const size_t groups = c.size() / block;
  STM_CHECK_EQ(x.size(), groups * repeat * block);
  // The constant does not take gradient, so backward is the same
  // pass-through as AddConstant.
  Tensor out = MakeOp(x.shape(), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      px->grad[i] += node.grad[i];
    }
  });
  for (size_t g = 0; g < groups; ++g) {
    const float* cb = c.data() + g * block;
    for (size_t r = 0; r < repeat; ++r) {
      const size_t base = (g * repeat + r) * block;
      const float* xb = x.value().data() + base;
      float* ob = out.value().data() + base;
      for (size_t i = 0; i < block; ++i) ob[i] = xb[i] + cb[i];
    }
  }
  return out;
}

Tensor Relu(const Tensor& x) {
  Tensor out = MakeOp(x.shape(), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      if (px->value[i] > 0.0f) px->grad[i] += node.grad[i];
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = std::max(0.0f, x.value()[i]);
  }
  return out;
}

Tensor Gelu(const Tensor& x) {
  Tensor out = MakeOp(x.shape(), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      px->grad[i] += node.grad[i] * GeluGrad(px->value[i]);
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = GeluValue(x.value()[i]);
  }
  return out;
}

Tensor Tanh(const Tensor& x) {
  Tensor out = MakeOp(x.shape(), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float y = node.value[i];
      px->grad[i] += node.grad[i] * (1.0f - y * y);
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = std::tanh(x.value()[i]);
  }
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  Tensor out = MakeOp(x.shape(), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float y = node.value[i];
      px->grad[i] += node.grad[i] * y * (1.0f - y);
    }
  });
  for (size_t i = 0; i < out.size(); ++i) {
    out.value()[i] = 1.0f / (1.0f + std::exp(-x.value()[i]));
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  STM_CHECK_EQ(a.rank(), 2u);
  STM_CHECK_EQ(b.rank(), 2u);
  STM_CHECK_EQ(a.dim(1), b.dim(0));
  const size_t m = a.dim(0);
  const size_t k = a.dim(1);
  const size_t n = b.dim(1);
  Tensor out = MakeOp({m, n}, {a, b}, [m, k, n](Node& node) {
    Node* pa = node.parents[0].get();
    Node* pb = node.parents[1].get();
    // dA = dC * B^T
    if (pa->requires_grad) {
      pa->EnsureGrad();
      la::GemmBtAcc(node.grad.data(), pb->value.data(), pa->grad.data(), m,
                    n, k);
    }
    // dB = A^T * dC
    if (pb->requires_grad) {
      pb->EnsureGrad();
      la::GemmAtAcc(pa->value.data(), node.grad.data(), pb->grad.data(), k,
                    m, n);
    }
  });
  // C = A * B
  la::GemmAcc(a.value().data(), b.value().data(), out.value().data(), m, k,
              n);
  return out;
}

Tensor BMatMul(const Tensor& a, const Tensor& b) {
  STM_CHECK_EQ(a.rank(), 3u);
  STM_CHECK_EQ(b.rank(), 3u);
  STM_CHECK_EQ(a.dim(0), b.dim(0));
  STM_CHECK_EQ(a.dim(2), b.dim(1));
  const size_t batch = a.dim(0);
  const size_t m = a.dim(1);
  const size_t k = a.dim(2);
  const size_t n = b.dim(2);
  Tensor out = MakeOp({batch, m, n}, {a, b}, [batch, m, k, n](Node& node) {
    Node* pa = node.parents[0].get();
    Node* pb = node.parents[1].get();
    if (pa->requires_grad) pa->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    // Batch entries touch disjoint slices, so the batch loop is the
    // parallel axis; the per-batch kernels run inline inside it.
    ParallelFor(0, batch, GrainForOps(m * k * n), [&](size_t b0, size_t b1) {
      for (size_t bb = b0; bb < b1; ++bb) {
        const float* avals = pa->value.data() + bb * m * k;
        const float* bvals = pb->value.data() + bb * k * n;
        const float* gvals = node.grad.data() + bb * m * n;
        // dA = dC * B^T
        if (pa->requires_grad) {
          la::GemmBtAcc(gvals, bvals, pa->grad.data() + bb * m * k, m, n, k);
        }
        // dB = A^T * dC
        if (pb->requires_grad) {
          la::GemmAtAcc(avals, gvals, pb->grad.data() + bb * k * n, k, m, n);
        }
      }
    });
  });
  ParallelFor(0, batch, GrainForOps(m * k * n), [&](size_t b0, size_t b1) {
    for (size_t bb = b0; bb < b1; ++bb) {
      la::GemmAcc(a.value().data() + bb * m * k,
                  b.value().data() + bb * k * n,
                  out.value().data() + bb * m * n, m, k, n);
    }
  });
  return out;
}

Tensor BMatMulT(const Tensor& a, const Tensor& b) {
  STM_CHECK_EQ(a.rank(), 3u);
  STM_CHECK_EQ(b.rank(), 3u);
  STM_CHECK_EQ(a.dim(0), b.dim(0));
  STM_CHECK_EQ(a.dim(2), b.dim(2));
  const size_t batch = a.dim(0);
  const size_t m = a.dim(1);
  const size_t k = a.dim(2);
  const size_t n = b.dim(1);
  Tensor out = MakeOp({batch, m, n}, {a, b}, [batch, m, k, n](Node& node) {
    Node* pa = node.parents[0].get();
    Node* pb = node.parents[1].get();
    if (pa->requires_grad) pa->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    // C = A * B^T; dA = dC * B; dB = dC^T * A.
    ParallelFor(0, batch, GrainForOps(m * k * n), [&](size_t b0, size_t b1) {
      for (size_t bb = b0; bb < b1; ++bb) {
        const float* avals = pa->value.data() + bb * m * k;
        const float* bvals = pb->value.data() + bb * n * k;
        const float* gvals = node.grad.data() + bb * m * n;
        if (pa->requires_grad) {
          la::GemmAcc(gvals, bvals, pa->grad.data() + bb * m * k, m, n, k);
        }
        if (pb->requires_grad) {
          la::GemmAtAcc(gvals, avals, pb->grad.data() + bb * n * k, n, m, k);
        }
      }
    });
  });
  ParallelFor(0, batch, GrainForOps(m * k * n), [&](size_t b0, size_t b1) {
    for (size_t bb = b0; bb < b1; ++bb) {
      la::GemmBtAcc(a.value().data() + bb * m * k,
                    b.value().data() + bb * n * k,
                    out.value().data() + bb * m * n, m, k, n);
    }
  });
  return out;
}

Tensor Reshape(const Tensor& x, std::vector<size_t> shape) {
  STM_CHECK_EQ(ShapeSize(shape), x.size());
  Tensor out = MakeOp(std::move(shape), {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      px->grad[i] += node.grad[i];
    }
  });
  out.value() = x.value();
  return out;
}

namespace {

// Maps flat index under `shape` through axis permutation `axes`:
// out[new multi-index] = in[old multi-index], where new_idx[d] =
// old_idx[axes[d]].
void PermuteCopy(const std::vector<float>& in,
                 const std::vector<size_t>& in_shape,
                 const std::vector<size_t>& axes, std::vector<float>& out,
                 bool accumulate_into_in, std::vector<float>* in_grad,
                 const std::vector<float>* out_grad) {
  const size_t rank = in_shape.size();
  std::vector<size_t> out_shape(rank);
  for (size_t d = 0; d < rank; ++d) out_shape[d] = in_shape[axes[d]];
  std::vector<size_t> in_strides(rank, 1);
  for (size_t d = rank - 1; d > 0; --d) {
    in_strides[d - 1] = in_strides[d] * in_shape[d];
  }
  std::vector<size_t> idx(rank, 0);
  const size_t total = in.size();
  for (size_t flat_out = 0; flat_out < total; ++flat_out) {
    // Decode flat_out into the output multi-index, map to input flat index.
    size_t rem = flat_out;
    size_t flat_in = 0;
    for (size_t d = 0; d < rank; ++d) {
      size_t block = 1;
      for (size_t e = d + 1; e < rank; ++e) block *= out_shape[e];
      idx[d] = rem / block;
      rem %= block;
      flat_in += idx[d] * in_strides[axes[d]];
    }
    if (accumulate_into_in) {
      (*in_grad)[flat_in] += (*out_grad)[flat_out];
    } else {
      out[flat_out] = in[flat_in];
    }
  }
}

}  // namespace

Tensor Permute(const Tensor& x, const std::vector<size_t>& axes) {
  const size_t rank = x.rank();
  STM_CHECK_EQ(axes.size(), rank);
  STM_CHECK_GE(rank, 2u);
  STM_CHECK_LE(rank, 4u);
  std::vector<size_t> out_shape(rank);
  for (size_t d = 0; d < rank; ++d) out_shape[d] = x.dim(axes[d]);
  std::vector<size_t> in_shape = x.shape();
  std::vector<size_t> axes_copy = axes;
  Tensor out =
      MakeOp(out_shape, {x}, [in_shape, axes_copy](Node& node) {
        Node* px = node.parents[0].get();
        if (!px->requires_grad) return;
        px->EnsureGrad();
        std::vector<float> unused;
        PermuteCopy(px->value, in_shape, axes_copy, unused,
                    /*accumulate_into_in=*/true, &px->grad, &node.grad);
      });
  PermuteCopy(x.value(), in_shape, axes_copy, out.value(),
              /*accumulate_into_in=*/false, nullptr, nullptr);
  return out;
}

Tensor SliceCols(const Tensor& x, size_t start, size_t len) {
  STM_CHECK_EQ(x.rank(), 2u);
  const size_t n = x.dim(0);
  const size_t d = x.dim(1);
  STM_CHECK_LE(start + len, d);
  Tensor out = MakeOp({n, len}, {x}, [n, d, start, len](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t r = 0; r < n; ++r) {
      const float* g = node.grad.data() + r * len;
      float* gx = px->grad.data() + r * d + start;
      for (size_t j = 0; j < len; ++j) gx[j] += g[j];
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float* src = x.value().data() + r * d + start;
    float* dst = out.value().data() + r * len;
    for (size_t j = 0; j < len; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor Rows(const Tensor& x, const std::vector<int32_t>& indices) {
  STM_CHECK_EQ(x.rank(), 2u);
  const size_t d = x.dim(1);
  const size_t k = indices.size();
  std::vector<int32_t> idx = indices;
  for (int32_t i : idx) {
    STM_CHECK_GE(i, 0);
    STM_CHECK_LT(static_cast<size_t>(i), x.dim(0));
  }
  Tensor out = MakeOp({k, d}, {x}, [idx, d](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t r = 0; r < idx.size(); ++r) {
      const float* g = node.grad.data() + r * d;
      float* gx = px->grad.data() + static_cast<size_t>(idx[r]) * d;
      for (size_t j = 0; j < d; ++j) gx[j] += g[j];
    }
  });
  for (size_t r = 0; r < k; ++r) {
    const float* src = x.value().data() + static_cast<size_t>(idx[r]) * d;
    float* dst = out.value().data() + r * d;
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  STM_CHECK(!parts.empty());
  const size_t n = parts[0].dim(0);
  size_t total_d = 0;
  std::vector<size_t> dims;
  for (const Tensor& p : parts) {
    STM_CHECK_EQ(p.rank(), 2u);
    STM_CHECK_EQ(p.dim(0), n);
    dims.push_back(p.dim(1));
    total_d += p.dim(1);
  }
  Tensor out = MakeOp({n, total_d}, parts, [n, dims, total_d](Node& node) {
    size_t offset = 0;
    for (size_t p = 0; p < node.parents.size(); ++p) {
      Node* parent = node.parents[p].get();
      const size_t d = dims[p];
      if (parent->requires_grad) {
        parent->EnsureGrad();
        for (size_t r = 0; r < n; ++r) {
          const float* g = node.grad.data() + r * total_d + offset;
          float* gp = parent->grad.data() + r * d;
          for (size_t j = 0; j < d; ++j) gp[j] += g[j];
        }
      }
      offset += d;
    }
  });
  size_t offset = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const size_t d = dims[p];
    for (size_t r = 0; r < n; ++r) {
      const float* src = parts[p].value().data() + r * d;
      float* dst = out.value().data() + r * total_d + offset;
      for (size_t j = 0; j < d; ++j) dst[j] = src[j];
    }
    offset += d;
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  STM_CHECK(!parts.empty());
  const size_t d = parts[0].dim(1);
  size_t total_n = 0;
  std::vector<size_t> ns;
  for (const Tensor& p : parts) {
    STM_CHECK_EQ(p.rank(), 2u);
    STM_CHECK_EQ(p.dim(1), d);
    ns.push_back(p.dim(0));
    total_n += p.dim(0);
  }
  Tensor out = MakeOp({total_n, d}, parts, [ns, d](Node& node) {
    size_t row = 0;
    for (size_t p = 0; p < node.parents.size(); ++p) {
      Node* parent = node.parents[p].get();
      if (parent->requires_grad) {
        parent->EnsureGrad();
        for (size_t r = 0; r < ns[p]; ++r) {
          const float* g = node.grad.data() + (row + r) * d;
          float* gp = parent->grad.data() + r * d;
          for (size_t j = 0; j < d; ++j) gp[j] += g[j];
        }
      }
      row += ns[p];
    }
  });
  size_t row = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    std::copy(parts[p].value().begin(), parts[p].value().end(),
              out.value().begin() + row * d);
    row += ns[p];
  }
  return out;
}

Tensor SumAll(const Tensor& x) {
  Tensor out = MakeOp({1}, {x}, [](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const float g = node.grad[0];
    for (float& v : px->grad) v += g;
  });
  float sum = 0.0f;
  for (float v : x.value()) sum += v;
  out.value()[0] = sum;
  return out;
}

Tensor MeanAll(const Tensor& x) {
  const float inv = 1.0f / static_cast<float>(x.size());
  return Scale(SumAll(x), inv);
}

Tensor MaskedMeanPool(const Tensor& x, size_t batch, size_t seq,
                      const std::vector<int>& lengths) {
  STM_CHECK_EQ(x.rank(), 2u);
  STM_CHECK_EQ(x.dim(0), batch * seq);
  STM_CHECK_EQ(lengths.size(), batch);
  const size_t d = x.dim(1);
  std::vector<int> lens = lengths;
  for (int len : lens) {
    STM_CHECK_GT(len, 0);
    STM_CHECK_LE(static_cast<size_t>(len), seq);
  }
  Tensor out = MakeOp({batch, d}, {x}, [batch, seq, d, lens](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t b = 0; b < batch; ++b) {
      const float inv = 1.0f / static_cast<float>(lens[b]);
      const float* g = node.grad.data() + b * d;
      for (int t = 0; t < lens[b]; ++t) {
        float* gx =
            px->grad.data() + (b * seq + static_cast<size_t>(t)) * d;
        for (size_t j = 0; j < d; ++j) gx[j] += g[j] * inv;
      }
    }
  });
  for (size_t b = 0; b < batch; ++b) {
    float* o = out.value().data() + b * d;
    for (int t = 0; t < lens[b]; ++t) {
      const float* xr =
          x.value().data() + (b * seq + static_cast<size_t>(t)) * d;
      for (size_t j = 0; j < d; ++j) o[j] += xr[j];
    }
    const float inv = 1.0f / static_cast<float>(lens[b]);
    for (size_t j = 0; j < d; ++j) o[j] *= inv;
  }
  return out;
}

Tensor MaxPoolRows(const Tensor& x, size_t batch, size_t group) {
  STM_CHECK_EQ(x.rank(), 2u);
  STM_CHECK_EQ(x.dim(0), batch * group);
  const size_t d = x.dim(1);
  // argmax indices are computed in forward and captured for backward.
  auto argmax = std::make_shared<std::vector<size_t>>(batch * d);
  Tensor out =
      MakeOp({batch, d}, {x}, [argmax, batch, d](Node& node) {
        Node* px = node.parents[0].get();
        if (!px->requires_grad) return;
        px->EnsureGrad();
        for (size_t b = 0; b < batch; ++b) {
          const float* g = node.grad.data() + b * d;
          for (size_t j = 0; j < d; ++j) {
            px->grad[(*argmax)[b * d + j] * d + j] += g[j];
          }
        }
      });
  for (size_t b = 0; b < batch; ++b) {
    float* o = out.value().data() + b * d;
    for (size_t j = 0; j < d; ++j) {
      size_t best_row = b * group;
      float best = x.value()[best_row * d + j];
      for (size_t r = 1; r < group; ++r) {
        const size_t row = b * group + r;
        const float v = x.value()[row * d + j];
        if (v > best) {
          best = v;
          best_row = row;
        }
      }
      o[j] = best;
      (*argmax)[b * d + j] = best_row;
    }
  }
  return out;
}

Tensor WeightedSumRows(const Tensor& x, const Tensor& weights) {
  STM_CHECK_EQ(x.rank(), 2u);
  STM_CHECK_EQ(weights.size(), x.dim(0));
  const size_t n = x.dim(0);
  const size_t d = x.dim(1);
  Tensor out = MakeOp({1, d}, {x, weights}, [n, d](Node& node) {
    Node* px = node.parents[0].get();
    Node* pw = node.parents[1].get();
    if (px->requires_grad) {
      px->EnsureGrad();
      for (size_t r = 0; r < n; ++r) {
        const float w = pw->value[r];
        float* gx = px->grad.data() + r * d;
        for (size_t j = 0; j < d; ++j) gx[j] += node.grad[j] * w;
      }
    }
    if (pw->requires_grad) {
      pw->EnsureGrad();
      for (size_t r = 0; r < n; ++r) {
        const float* xr = px->value.data() + r * d;
        float sum = 0.0f;
        for (size_t j = 0; j < d; ++j) sum += node.grad[j] * xr[j];
        pw->grad[r] += sum;
      }
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float w = weights.value()[r];
    const float* xr = x.value().data() + r * d;
    for (size_t j = 0; j < d; ++j) out.value()[j] += w * xr[j];
  }
  return out;
}

Tensor SoftmaxLastDim(const Tensor& x) {
  const size_t d = x.shape().back();
  const size_t n = x.size() / d;
  Tensor out = MakeOp(x.shape(), {x}, [n, d](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t r = 0; r < n; ++r) {
      const float* y = node.value.data() + r * d;
      const float* g = node.grad.data() + r * d;
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += y[j] * g[j];
      float* gx = px->grad.data() + r * d;
      for (size_t j = 0; j < d; ++j) gx[j] += y[j] * (g[j] - dot);
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float* xr = x.value().data() + r * d;
    float* o = out.value().data() + r * d;
    float max = xr[0];
    for (size_t j = 1; j < d; ++j) max = std::max(max, xr[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      o[j] = std::exp(xr[j] - max);
      sum += o[j];
    }
    const float inv = 1.0f / sum;
    for (size_t j = 0; j < d; ++j) o[j] *= inv;
  }
  return out;
}

Tensor LogSoftmaxLastDim(const Tensor& x) {
  const size_t d = x.shape().back();
  const size_t n = x.size() / d;
  Tensor out = MakeOp(x.shape(), {x}, [n, d](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t r = 0; r < n; ++r) {
      const float* y = node.value.data() + r * d;  // log softmax
      const float* g = node.grad.data() + r * d;
      float gsum = 0.0f;
      for (size_t j = 0; j < d; ++j) gsum += g[j];
      float* gx = px->grad.data() + r * d;
      for (size_t j = 0; j < d; ++j) {
        gx[j] += g[j] - std::exp(y[j]) * gsum;
      }
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float* xr = x.value().data() + r * d;
    float* o = out.value().data() + r * d;
    float max = xr[0];
    for (size_t j = 1; j < d; ++j) max = std::max(max, xr[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < d; ++j) sum += std::exp(xr[j] - max);
    const float lse = max + std::log(sum);
    for (size_t j = 0; j < d; ++j) o[j] = xr[j] - lse;
  }
  return out;
}

Tensor NormalizeRowsOp(const Tensor& x) {
  STM_CHECK_EQ(x.rank(), 2u);
  const size_t n = x.dim(0);
  const size_t d = x.dim(1);
  auto norms = std::make_shared<std::vector<float>>(n, 0.0f);
  Tensor out = MakeOp({n, d}, {x}, [n, d, norms](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t r = 0; r < n; ++r) {
      const float norm = (*norms)[r];
      if (norm == 0.0f) {
        for (size_t j = 0; j < d; ++j) {
          px->grad[r * d + j] += node.grad[r * d + j];
        }
        continue;
      }
      const float* y = node.value.data() + r * d;
      const float* g = node.grad.data() + r * d;
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += g[j] * y[j];
      float* gx = px->grad.data() + r * d;
      for (size_t j = 0; j < d; ++j) {
        gx[j] += (g[j] - dot * y[j]) / norm;
      }
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float* xr = x.value().data() + r * d;
    float norm = 0.0f;
    for (size_t j = 0; j < d; ++j) norm += xr[j] * xr[j];
    norm = std::sqrt(norm);
    (*norms)[r] = norm;
    float* o = out.value().data() + r * d;
    const float inv = norm > 0.0f ? 1.0f / norm : 1.0f;
    for (size_t j = 0; j < d; ++j) o[j] = xr[j] * inv;
  }
  return out;
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  STM_CHECK_EQ(gamma.rank(), 1u);
  STM_CHECK_EQ(beta.rank(), 1u);
  const size_t d = gamma.dim(0);
  STM_CHECK_EQ(beta.dim(0), d);
  STM_CHECK_EQ(x.size() % d, 0u);
  const size_t n = x.size() / d;
  // Cache per-row mean and inverse stddev for backward.
  auto mean = std::make_shared<std::vector<float>>(n);
  auto rstd = std::make_shared<std::vector<float>>(n);
  Tensor out = MakeOp(x.shape(), {x, gamma, beta},
                      [n, d, mean, rstd](Node& node) {
    Node* px = node.parents[0].get();
    Node* pg = node.parents[1].get();
    Node* pb = node.parents[2].get();
    if (px->requires_grad) px->EnsureGrad();
    if (pg->requires_grad) pg->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    for (size_t r = 0; r < n; ++r) {
      const float* xr = px->value.data() + r * d;
      const float* g = node.grad.data() + r * d;
      const float mu = (*mean)[r];
      const float rs = (*rstd)[r];
      if (pg->requires_grad || pb->requires_grad) {
        for (size_t j = 0; j < d; ++j) {
          const float xhat = (xr[j] - mu) * rs;
          if (pg->requires_grad) pg->grad[j] += g[j] * xhat;
          if (pb->requires_grad) pb->grad[j] += g[j];
        }
      }
      if (px->requires_grad) {
        // dxhat = g * gamma; dx = rs*(dxhat - mean(dxhat)
        //                              - xhat*mean(dxhat*xhat))
        float sum_dxhat = 0.0f;
        float sum_dxhat_xhat = 0.0f;
        for (size_t j = 0; j < d; ++j) {
          const float xhat = (xr[j] - mu) * rs;
          const float dxhat = g[j] * pg->value[j];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xhat;
        }
        const float inv_d = 1.0f / static_cast<float>(d);
        float* gx = px->grad.data() + r * d;
        for (size_t j = 0; j < d; ++j) {
          const float xhat = (xr[j] - mu) * rs;
          const float dxhat = g[j] * pg->value[j];
          gx[j] += rs * (dxhat - inv_d * sum_dxhat -
                         xhat * inv_d * sum_dxhat_xhat);
        }
      }
    }
  });
  for (size_t r = 0; r < n; ++r) {
    const float* xr = x.value().data() + r * d;
    float* o = out.value().data() + r * d;
    float mu = 0.0f;
    for (size_t j = 0; j < d; ++j) mu += xr[j];
    mu /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      const float diff = xr[j] - mu;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float rs = 1.0f / std::sqrt(var + eps);
    (*mean)[r] = mu;
    (*rstd)[r] = rs;
    for (size_t j = 0; j < d; ++j) {
      o[j] = (xr[j] - mu) * rs * gamma.value()[j] + beta.value()[j];
    }
  }
  return out;
}

Tensor Dropout(const Tensor& x, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return x;
  STM_CHECK_LT(p, 1.0f);
  auto mask = std::make_shared<std::vector<float>>(x.size());
  const float scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < x.size(); ++i) {
    (*mask)[i] = rng.Bernoulli(p) ? 0.0f : scale;
  }
  Tensor out = MakeOp(x.shape(), {x}, [mask](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      px->grad[i] += node.grad[i] * (*mask)[i];
    }
  });
  for (size_t i = 0; i < x.size(); ++i) {
    out.value()[i] = x.value()[i] * (*mask)[i];
  }
  return out;
}

Tensor Im2Col(const Tensor& x, size_t batch, size_t seq, size_t width) {
  STM_CHECK_EQ(x.rank(), 2u);
  STM_CHECK_EQ(x.dim(0), batch * seq);
  STM_CHECK_GE(seq, width);
  const size_t d = x.dim(1);
  const size_t windows = seq - width + 1;
  Tensor out = MakeOp({batch * windows, width * d}, {x},
                      [batch, seq, width, d, windows](Node& node) {
    Node* px = node.parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t b = 0; b < batch; ++b) {
      for (size_t w = 0; w < windows; ++w) {
        const float* g = node.grad.data() + (b * windows + w) * width * d;
        for (size_t t = 0; t < width; ++t) {
          float* gx = px->grad.data() + (b * seq + w + t) * d;
          for (size_t j = 0; j < d; ++j) gx[j] += g[t * d + j];
        }
      }
    }
  });
  for (size_t b = 0; b < batch; ++b) {
    for (size_t w = 0; w < windows; ++w) {
      float* o = out.value().data() + (b * windows + w) * width * d;
      for (size_t t = 0; t < width; ++t) {
        const float* xr = x.value().data() + (b * seq + w + t) * d;
        for (size_t j = 0; j < d; ++j) o[t * d + j] = xr[j];
      }
    }
  }
  return out;
}

}  // namespace stm::nn
