#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace stm::datasets {

namespace {

// A theme: unnormalized token distribution for one taxonomy node.
struct Theme {
  std::vector<int32_t> tokens;
  std::vector<double> weights;
  AliasSampler sampler;

  void Finalize() { sampler = AliasSampler(weights); }
  int32_t Sample(Rng& rng) const { return tokens[sampler.Sample(rng)]; }
};

uint64_t SpecFingerprint(const SyntheticSpec& spec) {
  uint64_t h = Fnv1a(spec.dataset_name);
  h = HashCombine(h, spec.seed);
  h = HashCombine(h, spec.num_docs);
  h = HashCombine(h, spec.classes.size());
  for (const ClassSpec& c : spec.classes) {
    h = HashCombine(h, Fnv1a(c.name));
    h = HashCombine(h, static_cast<uint64_t>(c.prior * 1000));
  }
  h = HashCombine(h, spec.background_vocab);
  h = HashCombine(h, spec.class_vocab);
  h = HashCombine(h, spec.num_ambiguous);
  h = HashCombine(h, static_cast<uint64_t>(spec.topic_noise * 1000));
  h = HashCombine(h, spec.ambiguous_seeds ? 1u : 0u);
  h = HashCombine(h, spec.multi_label ? 1u : 0u);
  h = HashCombine(h, spec.num_users);
  h = HashCombine(h, spec.num_tags);
  h = HashCombine(h, spec.num_aux_topics);
  h = HashCombine(h, spec.pretrain_docs);
  h = HashCombine(h, spec.pretrain_include_eval ? 1u : 0u);
  return h;
}

}  // namespace

SyntheticDataset Generate(const SyntheticSpec& spec) {
  STM_CHECK(!spec.classes.empty());
  STM_CHECK_GE(spec.doc_len_max, spec.doc_len_min);
  Rng rng(spec.seed);
  SyntheticDataset data;
  data.fingerprint = SpecFingerprint(spec);
  text::Vocabulary& vocab = data.corpus.vocab();

  // ---- taxonomy ----
  for (const ClassSpec& c : spec.classes) {
    data.tree.AddNode(c.name, c.parent);
  }
  for (int node = 0; node < static_cast<int>(spec.classes.size()); ++node) {
    if (data.tree.IsLeaf(node)) data.leaf_classes.push_back(node);
  }

  // ---- background vocabulary (stopwords first, then Zipfian filler) ----
  Theme background;
  {
    const auto& stopwords = text::Stopwords();
    for (size_t i = 0; i < stopwords.size(); ++i) {
      background.tokens.push_back(vocab.AddToken(stopwords[i], 0));
      background.weights.push_back(30.0 / (1.0 + i * 0.05));
    }
    for (size_t i = 0; i < spec.background_vocab; ++i) {
      background.tokens.push_back(
          vocab.AddToken("bg" + std::to_string(i), 0));
      background.weights.push_back(8.0 / std::pow(1.0 + i, 0.85));
    }
    background.Finalize();
  }

  // ---- per-node themes ----
  std::vector<Theme> themes(spec.classes.size());
  std::vector<std::vector<int32_t>> node_name_tokens(spec.classes.size());
  for (size_t c = 0; c < spec.classes.size(); ++c) {
    Theme& theme = themes[c];
    const ClassSpec& cls = spec.classes[c];
    const std::vector<std::string> name_parts =
        SplitWhitespace(cls.name);
    STM_CHECK(!name_parts.empty());
    for (const std::string& part : name_parts) {
      const int32_t id = vocab.AddToken(part, 0);
      node_name_tokens[c].push_back(id);
      theme.tokens.push_back(id);
      theme.weights.push_back(9.0);
    }
    for (const std::string& kw : cls.keywords) {
      const int32_t id = vocab.AddToken(kw, 0);
      theme.tokens.push_back(id);
      theme.weights.push_back(6.0);
    }
    const std::string stem = name_parts[0];
    for (size_t i = 0; i < spec.class_vocab; ++i) {
      const int32_t id =
          vocab.AddToken(stem + "_t" + std::to_string(i), 0);
      theme.tokens.push_back(id);
      theme.weights.push_back(6.0 / std::pow(1.0 + i, 0.7));
    }
  }

  // ---- ambiguous (polysemous) tokens shared between leaf pairs ----
  const size_t num_leaves = data.leaf_classes.size();
  std::vector<std::vector<int32_t>> leaf_ambiguous(num_leaves);
  for (size_t i = 0; i < spec.num_ambiguous; ++i) {
    const int32_t id = vocab.AddToken("amb" + std::to_string(i), 0);
    const size_t a = i % num_leaves;
    const size_t b = (i / num_leaves + 1 + a) % num_leaves;
    if (a == b) continue;
    themes[static_cast<size_t>(data.leaf_classes[a])].tokens.push_back(id);
    themes[static_cast<size_t>(data.leaf_classes[a])].weights.push_back(5.0);
    themes[static_cast<size_t>(data.leaf_classes[b])].tokens.push_back(id);
    themes[static_cast<size_t>(data.leaf_classes[b])].weights.push_back(5.0);
    leaf_ambiguous[a].push_back(id);
    leaf_ambiguous[b].push_back(id);
  }

  // ---- auxiliary transfer topics ----
  std::vector<Theme> aux_themes(spec.num_aux_topics);
  for (size_t k = 0; k < spec.num_aux_topics; ++k) {
    const std::string name = "auxtopic" + std::to_string(k);
    data.aux_topic_names.push_back(name);
    Theme& theme = aux_themes[k];
    const int32_t name_id = vocab.AddToken(name, 0);
    data.aux_topic_name_tokens.push_back({name_id});
    theme.tokens.push_back(name_id);
    theme.weights.push_back(9.0);
    for (size_t i = 0; i < spec.class_vocab; ++i) {
      const int32_t id =
          vocab.AddToken("aux" + std::to_string(k) + "_t" +
                             std::to_string(i),
                         0);
      theme.tokens.push_back(id);
      theme.weights.push_back(6.0 / std::pow(1.0 + i, 0.7));
    }
    theme.Finalize();
  }
  for (Theme& theme : themes) theme.Finalize();

  // ---- sampling helpers ----
  auto sample_len = [&rng, &spec]() {
    return spec.doc_len_min +
           rng.UniformInt(spec.doc_len_max - spec.doc_len_min + 1);
  };
  // Generates one document's tokens for a set of leaf node ids.
  auto gen_tokens = [&](const std::vector<int>& leaves, Rng& r) {
    std::vector<int32_t> tokens;
    const size_t len = sample_len();
    tokens.reserve(len);
    for (size_t t = 0; t < len; ++t) {
      if (!r.Bernoulli(spec.topical_fraction)) {
        tokens.push_back(background.Sample(r));
        vocab.AddCount(tokens.back(), 1);
        continue;
      }
      int leaf = leaves[r.UniformInt(leaves.size())];
      if (spec.topic_noise > 0.0 && r.Bernoulli(spec.topic_noise)) {
        // Cross-topic contamination: a token from an unrelated class.
        leaf = data.leaf_classes[r.UniformInt(data.leaf_classes.size())];
      }
      const std::vector<int> chain = data.tree.WithAncestors(leaf);
      int node = leaf;
      if (chain.size() > 1 && r.Bernoulli(spec.parent_share)) {
        // Pick an ancestor theme (excluding the leaf itself).
        node = chain[1 + r.UniformInt(chain.size() - 1)];
      }
      tokens.push_back(themes[static_cast<size_t>(node)].Sample(r));
      vocab.AddCount(tokens.back(), 1);
    }
    return tokens;
  };

  // ---- evaluation documents ----
  std::vector<double> leaf_priors;
  for (int leaf : data.leaf_classes) {
    leaf_priors.push_back(spec.classes[static_cast<size_t>(leaf)].prior);
  }
  data.corpus.label_names().clear();
  for (const ClassSpec& c : spec.classes) {
    data.corpus.label_names().push_back(c.name);
  }
  for (size_t d = 0; d < spec.num_docs; ++d) {
    text::Document doc;
    std::vector<int> doc_leaves;
    if (spec.multi_label) {
      const size_t k = 1 + rng.UniformInt(spec.max_labels);
      while (doc_leaves.size() < k && doc_leaves.size() < num_leaves) {
        const int leaf =
            data.leaf_classes[rng.Discrete(leaf_priors)];
        if (std::find(doc_leaves.begin(), doc_leaves.end(), leaf) ==
            doc_leaves.end()) {
          doc_leaves.push_back(leaf);
        }
      }
    } else {
      doc_leaves.push_back(data.leaf_classes[rng.Discrete(leaf_priors)]);
    }
    doc.tokens = gen_tokens(doc_leaves, rng);
    doc.labels = doc_leaves;
    doc.label_path = data.tree.PathTo(doc_leaves[0]);
    data.corpus.docs().push_back(std::move(doc));
  }

  // ---- metadata ----
  if (spec.num_users > 0) {
    // Partition users among leaves round-robin; user u prefers leaf
    // u % num_leaves.
    for (text::Document& doc : data.corpus.docs()) {
      const int leaf = doc.labels[0];
      const size_t leaf_pos = static_cast<size_t>(
          std::find(data.leaf_classes.begin(), data.leaf_classes.end(),
                    leaf) -
          data.leaf_classes.begin());
      size_t user;
      if (rng.Bernoulli(spec.user_affinity) &&
          leaf_pos < spec.num_users) {
        // A user from this class's pool.
        const size_t pool =
            (spec.num_users + num_leaves - 1 - leaf_pos) / num_leaves;
        user = leaf_pos + num_leaves * rng.UniformInt(std::max<size_t>(
                                             1, pool));
        if (user >= spec.num_users) user = leaf_pos;
      } else {
        user = rng.UniformInt(spec.num_users);
      }
      doc.metadata["user"].push_back("u" + std::to_string(user));
    }
  }
  if (spec.num_tags > 0 && spec.tags_per_doc > 0) {
    for (text::Document& doc : data.corpus.docs()) {
      const int leaf = doc.labels[0];
      const size_t leaf_pos = static_cast<size_t>(
          std::find(data.leaf_classes.begin(), data.leaf_classes.end(),
                    leaf) -
          data.leaf_classes.begin());
      for (size_t t = 0; t < spec.tags_per_doc; ++t) {
        size_t pos = rng.Bernoulli(spec.tag_noise)
                         ? rng.UniformInt(num_leaves)
                         : leaf_pos;
        const size_t pool =
            (spec.num_tags + num_leaves - 1 - pos) / num_leaves;
        size_t tag =
            pos + num_leaves * rng.UniformInt(std::max<size_t>(1, pool));
        if (tag >= spec.num_tags) tag = pos % spec.num_tags;
        doc.metadata["tag"].push_back("t" + std::to_string(tag));
      }
    }
  }
  if (!spec.venue_prefix.empty()) {
    for (text::Document& doc : data.corpus.docs()) {
      const int leaf = doc.labels[0];
      const size_t leaf_pos = static_cast<size_t>(
          std::find(data.leaf_classes.begin(), data.leaf_classes.end(),
                    leaf) -
          data.leaf_classes.begin());
      const size_t venue =
          rng.Bernoulli(0.9) ? leaf_pos : rng.UniformInt(num_leaves);
      doc.metadata["venue"].push_back(spec.venue_prefix +
                                      std::to_string(venue));
    }
  }
  if (spec.refs_per_doc > 0) {
    // Group docs by primary label for same-class citations.
    std::vector<std::vector<size_t>> by_class(spec.classes.size());
    for (size_t d = 0; d < data.corpus.num_docs(); ++d) {
      by_class[static_cast<size_t>(data.corpus.docs()[d].labels[0])]
          .push_back(d);
    }
    for (size_t d = 0; d < data.corpus.num_docs(); ++d) {
      text::Document& doc = data.corpus.docs()[d];
      const auto& pool =
          by_class[static_cast<size_t>(doc.labels[0])];
      for (size_t r = 0; r < spec.refs_per_doc; ++r) {
        size_t target;
        if (rng.Bernoulli(spec.ref_same_class) && pool.size() > 1) {
          target = pool[rng.UniformInt(pool.size())];
        } else {
          target = rng.UniformInt(data.corpus.num_docs());
        }
        if (target == d) continue;
        doc.metadata["ref"].push_back("d" + std::to_string(target));
      }
    }
  }

  // ---- weak supervision + descriptions ----
  data.leaf_name_tokens.reserve(num_leaves);
  for (int leaf : data.leaf_classes) {
    const size_t c = static_cast<size_t>(leaf);
    data.leaf_name_tokens.push_back(node_name_tokens[c]);
    std::vector<int32_t> seeds = node_name_tokens[c];
    for (const std::string& kw : spec.classes[c].keywords) {
      seeds.push_back(vocab.IdOf(kw));
    }
    if (spec.ambiguous_seeds) {
      const size_t pos = data.supervision.class_keywords.size();
      if (!leaf_ambiguous[pos].empty()) {
        seeds.push_back(leaf_ambiguous[pos][0]);
      }
    }
    data.supervision.class_keywords.push_back(seeds);
    std::vector<std::string> desc_words = {spec.classes[c].name};
    for (const std::string& kw : spec.classes[c].keywords) {
      desc_words.push_back(kw);
    }
    const std::string stem = SplitWhitespace(spec.classes[c].name)[0];
    for (size_t i = 0; i < 3 && i < spec.class_vocab; ++i) {
      desc_words.push_back(stem + "_t" + std::to_string(i));
    }
    data.label_descriptions.push_back(Join(desc_words, " "));
  }
  data.supervision.labeled_docs.assign(num_leaves, {});

  // ---- auxiliary documents ----
  for (size_t k = 0; k < spec.num_aux_topics; ++k) {
    for (size_t d = 0; d < spec.aux_docs_per_topic; ++d) {
      std::vector<int32_t> tokens;
      const size_t len = sample_len();
      for (size_t t = 0; t < len; ++t) {
        if (rng.Bernoulli(spec.topical_fraction)) {
          tokens.push_back(aux_themes[k].Sample(rng));
        } else {
          tokens.push_back(background.Sample(rng));
        }
        vocab.AddCount(tokens.back(), 1);
      }
      data.aux_docs.push_back(std::move(tokens));
      data.aux_labels.push_back(static_cast<int>(k));
    }
  }

  // ---- general pre-training corpus (labels discarded) ----
  const size_t eval_themes = spec.pretrain_include_eval ? num_leaves : 0;
  const size_t total_themes = eval_themes + spec.num_aux_topics;
  STM_CHECK_GT(total_themes, 0u)
      << "pretrain corpus needs eval or aux themes";
  for (size_t d = 0; d < spec.pretrain_docs; ++d) {
    const size_t pick = rng.UniformInt(total_themes);
    std::vector<int32_t> tokens;
    if (pick < eval_themes) {
      tokens = gen_tokens({data.leaf_classes[pick]}, rng);
    } else {
      const Theme& theme = aux_themes[pick - eval_themes];
      const size_t len = sample_len();
      for (size_t t = 0; t < len; ++t) {
        tokens.push_back(rng.Bernoulli(spec.topical_fraction)
                             ? theme.Sample(rng)
                             : background.Sample(rng));
        vocab.AddCount(tokens.back(), 1);
      }
    }
    data.pretrain_docs.push_back(std::move(tokens));
  }

  return data;
}

std::vector<std::vector<size_t>> SampleLabeledDocs(
    const text::Corpus& corpus, size_t per_class, uint64_t seed) {
  Rng rng(seed);
  // Group by primary label.
  std::vector<std::vector<size_t>> by_class(corpus.num_labels());
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    const auto& labels = corpus.docs()[d].labels;
    if (!labels.empty()) {
      by_class[static_cast<size_t>(labels[0])].push_back(d);
    }
  }
  std::vector<std::vector<size_t>> sampled(corpus.num_labels());
  for (size_t c = 0; c < by_class.size(); ++c) {
    if (by_class[c].empty()) continue;
    const size_t k = std::min(per_class, by_class[c].size());
    for (size_t idx : rng.SampleWithoutReplacement(by_class[c].size(), k)) {
      sampled[c].push_back(by_class[c][idx]);
    }
  }
  return sampled;
}

}  // namespace stm::datasets
