#include "core/pseudo_docs.h"

#include <cmath>

#include "common/check.h"
#include "embedding/vmf.h"
#include "la/matrix.h"

namespace stm::core {

PseudoDocGenerator::PseudoDocGenerator(
    const embedding::WordEmbeddings* embeddings,
    std::vector<double> background, const PseudoDocOptions& options)
    : embeddings_(embeddings),
      background_(background),
      options_(options) {
  STM_CHECK(embeddings != nullptr);
}

std::vector<std::vector<int32_t>> PseudoDocGenerator::Generate(
    const std::vector<int32_t>& seeds, Rng& rng) const {
  std::vector<std::vector<int32_t>> pseudo;
  pseudo.reserve(options_.docs_per_class);

  if (!options_.enable_vmf || seeds.empty()) {
    for (size_t p = 0; p < options_.docs_per_class; ++p) {
      std::vector<int32_t> doc;
      doc.reserve(options_.doc_len);
      for (size_t t = 0; t < options_.doc_len; ++t) {
        if (rng.Bernoulli(options_.background_alpha) || seeds.empty()) {
          doc.push_back(static_cast<int32_t>(background_.Sample(rng)));
        } else {
          doc.push_back(seeds[rng.UniformInt(seeds.size())]);
        }
      }
      pseudo.push_back(std::move(doc));
    }
    return pseudo;
  }

  std::vector<std::vector<float>> units;
  units.reserve(seeds.size());
  for (int32_t id : seeds) units.push_back(embeddings_->UnitVectorOf(id));
  const embedding::VonMisesFisher vmf =
      embedding::VonMisesFisher::Fit(units);

  for (size_t p = 0; p < options_.docs_per_class; ++p) {
    const std::vector<float> direction = vmf.Sample(rng);
    // Candidate pool: words near the sampled direction PLUS the seed
    // words themselves (when seeds are dispersed — e.g. harvested from
    // labeled documents — the direction's neighborhood alone can drift
    // off-topic; the seeds anchor it).
    auto candidates =
        embeddings_->MostSimilar(direction, options_.topical_candidates);
    for (int32_t id : seeds) {
      bool present = false;
      for (const auto& [cid, _] : candidates) present = present || cid == id;
      if (!present) {
        candidates.emplace_back(
            id, la::Cosine(direction.data(),
                           embeddings_->UnitVectorOf(id).data(),
                           direction.size()));
      }
    }
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      double w = std::exp(static_cast<double>(candidates[i].second) / 0.1);
      if (i >= options_.topical_candidates) w *= 3.0;  // seed boost
      weights.push_back(w);
    }
    AliasSampler topical(weights);
    std::vector<int32_t> doc;
    doc.reserve(options_.doc_len);
    for (size_t t = 0; t < options_.doc_len; ++t) {
      if (rng.Bernoulli(options_.background_alpha)) {
        doc.push_back(static_cast<int32_t>(background_.Sample(rng)));
      } else {
        doc.push_back(candidates[topical.Sample(rng)].first);
      }
    }
    pseudo.push_back(std::move(doc));
  }
  return pseudo;
}

}  // namespace stm::core
