#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace stm::nn {
namespace {

void CheckGradients(Tensor param, const std::function<Tensor()>& loss_fn,
                    float tol = 2e-2f, float eps = 1e-3f) {
  Tensor loss = loss_fn();
  for (float& g : param.grad()) g = 0.0f;
  Backward(loss);
  const std::vector<float> analytic = param.grad();
  for (size_t i = 0; i < param.size(); ++i) {
    const float saved = param.value()[i];
    param.value()[i] = saved + eps;
    const float plus = loss_fn().item();
    param.value()[i] = saved - eps;
    const float minus = loss_fn().item();
    param.value()[i] = saved;
    const float numeric = (plus - minus) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0f, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(NnOpsExtraTest, AddConstantGradientPassesThrough) {
  Rng rng(1);
  Tensor x = Tensor::Param({2, 2}, 0.5f, rng);
  std::vector<float> c = {1.0f, -2.0f, 3.0f, -4.0f};
  CheckGradients(x, [&] { return SumAll(Tanh(AddConstant(x, c))); });
}

TEST(NnOpsExtraTest, ConcatRowsGradientSplitsCorrectly) {
  Rng rng(2);
  Tensor a = Tensor::Param({2, 3}, 0.5f, rng);
  Tensor b = Tensor::Param({1, 3}, 0.5f, rng);
  auto loss = [&] { return SumAll(Tanh(ConcatRows({a, b}))); };
  CheckGradients(a, loss);
  CheckGradients(b, loss);
}

TEST(NnOpsExtraTest, ReshapeGradientIsIdentity) {
  Rng rng(3);
  Tensor x = Tensor::Param({2, 6}, 0.5f, rng);
  CheckGradients(
      x, [&] { return SumAll(Tanh(Reshape(x, {3, 4}))); });
}

TEST(NnOpsExtraTest, AddScalarAndScaleCompose) {
  Rng rng(4);
  Tensor x = Tensor::Param({5}, 0.5f, rng);
  CheckGradients(
      x, [&] { return SumAll(Scale(AddScalar(x, 3.0f), -0.5f)); });
}

TEST(NnOpsExtraTest, SoftmaxStableUnderLargeLogits) {
  Tensor x = Tensor::FromVector({1000.0f, 1001.0f, 999.0f}, {1, 3});
  Tensor y = SoftmaxLastDim(x);
  float sum = 0.0f;
  for (float v : y.value()) {
    ASSERT_FALSE(std::isnan(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(y.value()[1], y.value()[0]);
}

TEST(NnOpsExtraTest, LogSoftmaxStableUnderLargeNegativeLogits) {
  Tensor x = Tensor::FromVector({-1000.0f, 0.0f}, {1, 2});
  Tensor y = LogSoftmaxLastDim(x);
  ASSERT_FALSE(std::isnan(y.value()[0]));
  EXPECT_NEAR(y.value()[1], 0.0f, 1e-5f);
}

TEST(NnOpsExtraTest, BceStableUnderExtremeLogits) {
  Tensor logits = Tensor::FromVector({50.0f, -50.0f}, {2});
  logits.node()->requires_grad = true;
  Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.item(), 0.0f, 1e-5f);
  Backward(loss);
  for (float g : logits.grad()) ASSERT_FALSE(std::isnan(g));

  Tensor bad = Tensor::FromVector({-50.0f, 50.0f}, {2});
  bad.node()->requires_grad = true;
  Tensor big = BceWithLogits(bad, {1.0f, 0.0f});
  EXPECT_NEAR(big.item(), 50.0f, 1e-3f);
}

TEST(NnOpsExtraTest, CrossEntropyUniformLogitsIsLogC) {
  Tensor logits = Tensor::Zeros({4, 7});
  Tensor loss = CrossEntropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(loss.item(), std::log(7.0f), 1e-5f);
}

TEST(NnOpsExtraTest, MeanAllMatchesSumScale) {
  Rng rng(5);
  Tensor x = Tensor::Param({3, 4}, 0.5f, rng);
  EXPECT_NEAR(MeanAll(x).item(), SumAll(x).item() / 12.0f, 1e-6f);
  CheckGradients(x, [&] { return MeanAll(Mul(x, x)); });
}

TEST(NnOpsExtraTest, SliceColsGradOnlyInWindow) {
  Rng rng(6);
  Tensor x = Tensor::Param({2, 5}, 0.5f, rng);
  Tensor loss = SumAll(SliceCols(x, 1, 2));
  Backward(loss);
  // Gradient is 1 inside columns [1,3), 0 outside.
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(x.grad()[r * 5 + 0], 0.0f);
    EXPECT_FLOAT_EQ(x.grad()[r * 5 + 1], 1.0f);
    EXPECT_FLOAT_EQ(x.grad()[r * 5 + 2], 1.0f);
    EXPECT_FLOAT_EQ(x.grad()[r * 5 + 3], 0.0f);
  }
}

TEST(NnOpsExtraTest, InfoNceGradientFlows) {
  Rng rng(7);
  Tensor sim = Tensor::Param({3, 3}, 0.5f, rng);
  CheckGradients(sim, [&] { return InfoNce(sim, 0.5f); });
}

}  // namespace
}  // namespace stm::nn
