// AVX-512VNNI micro-kernel build: the AVX-512 build's flags plus
// -mavx512vnni (see src/CMakeLists.txt). The fp32 kernels are identical
// to the avx512 tier's (same flags, same 8x16 tile, same FMA contraction
// regime — fp32 output is bit-identical between the two tiers); the int8
// micro-kernel replaces the maddubs/madd pair with one vpdpbusd per
// 4-byte group, which both halves the instruction count and skips the
// int16 intermediate. The integer arithmetic stays exact, so int8 output
// matches every other tier bit-for-bit. Only entered when cpuid reports
// AVX512VNNI on top of the F/BW/DQ/VL set (see ActiveGemmKernels).

#define STM_GEMM_KERNEL_NAMESPACE vnni
#define STM_GEMM_KERNEL_NAME "avx512+vnni"
#define STM_GEMM_KERNEL_MR 8
#define STM_GEMM_KERNEL_NR 16
#include "la/gemm_kernels_impl.h"
