#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/string_util.h"

namespace stm::eval {

double Accuracy(const std::vector<int>& pred, const std::vector<int>& gold) {
  STM_CHECK_EQ(pred.size(), gold.size());
  if (pred.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += (pred[i] == gold[i]);
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

namespace {

struct ClassCounts {
  std::vector<double> tp;
  std::vector<double> fp;
  std::vector<double> fn;
};

ClassCounts CountPerClass(const std::vector<int>& pred,
                          const std::vector<int>& gold,
                          size_t num_classes) {
  STM_CHECK_EQ(pred.size(), gold.size());
  ClassCounts counts;
  counts.tp.assign(num_classes, 0.0);
  counts.fp.assign(num_classes, 0.0);
  counts.fn.assign(num_classes, 0.0);
  for (size_t i = 0; i < pred.size(); ++i) {
    STM_CHECK_GE(pred[i], 0);
    STM_CHECK_LT(static_cast<size_t>(pred[i]), num_classes);
    STM_CHECK_GE(gold[i], 0);
    STM_CHECK_LT(static_cast<size_t>(gold[i]), num_classes);
    if (pred[i] == gold[i]) {
      counts.tp[static_cast<size_t>(pred[i])] += 1.0;
    } else {
      counts.fp[static_cast<size_t>(pred[i])] += 1.0;
      counts.fn[static_cast<size_t>(gold[i])] += 1.0;
    }
  }
  return counts;
}

}  // namespace

double MicroF1(const std::vector<int>& pred, const std::vector<int>& gold,
               size_t num_classes) {
  const ClassCounts counts = CountPerClass(pred, gold, num_classes);
  double tp = 0.0;
  double fp = 0.0;
  double fn = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    tp += counts.tp[c];
    fp += counts.fp[c];
    fn += counts.fn[c];
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom > 0.0 ? 2.0 * tp / denom : 0.0;
}

double MacroF1(const std::vector<int>& pred, const std::vector<int>& gold,
               size_t num_classes) {
  const ClassCounts counts = CountPerClass(pred, gold, num_classes);
  double total = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    const double denom = 2.0 * counts.tp[c] + counts.fp[c] + counts.fn[c];
    total += denom > 0.0 ? 2.0 * counts.tp[c] / denom : 0.0;
  }
  return num_classes > 0 ? total / static_cast<double>(num_classes) : 0.0;
}

la::Matrix ConfusionMatrix(const std::vector<int>& pred,
                           const std::vector<int>& gold,
                           size_t num_classes) {
  STM_CHECK_EQ(pred.size(), gold.size());
  la::Matrix confusion(num_classes, num_classes);
  for (size_t i = 0; i < pred.size(); ++i) {
    confusion.At(static_cast<size_t>(gold[i]),
                 static_cast<size_t>(pred[i])) += 1.0f;
  }
  return confusion;
}

std::string FormatConfusion(const la::Matrix& confusion,
                            const std::vector<std::string>& labels) {
  STM_CHECK_EQ(confusion.rows(), labels.size());
  std::string out = StrFormat("%-12s", "gold\\pred");
  for (const std::string& label : labels) {
    out += StrFormat("%10.10s", label.c_str());
  }
  out += "\n";
  for (size_t r = 0; r < confusion.rows(); ++r) {
    out += StrFormat("%-12.12s", labels[r].c_str());
    for (size_t c = 0; c < confusion.cols(); ++c) {
      out += StrFormat("%10d", static_cast<int>(confusion.At(r, c)));
    }
    out += "\n";
  }
  return out;
}

double ExampleF1(const std::vector<std::vector<int>>& pred,
                 const std::vector<std::vector<int>>& gold) {
  STM_CHECK_EQ(pred.size(), gold.size());
  if (pred.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const std::set<int> p(pred[i].begin(), pred[i].end());
    const std::set<int> g(gold[i].begin(), gold[i].end());
    size_t inter = 0;
    for (int label : p) inter += g.count(label);
    const size_t denom = p.size() + g.size();
    total += denom > 0 ? 2.0 * static_cast<double>(inter) /
                             static_cast<double>(denom)
                       : 0.0;
  }
  return total / static_cast<double>(pred.size());
}

double PrecisionAtK(const std::vector<std::vector<int>>& ranked,
                    const std::vector<std::vector<int>>& gold, size_t k) {
  STM_CHECK_EQ(ranked.size(), gold.size());
  STM_CHECK_GT(k, 0u);
  if (ranked.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const std::set<int> g(gold[i].begin(), gold[i].end());
    size_t hits = 0;
    const size_t top = std::min(k, ranked[i].size());
    for (size_t j = 0; j < top; ++j) hits += g.count(ranked[i][j]);
    total += static_cast<double>(hits) / static_cast<double>(k);
  }
  return total / static_cast<double>(ranked.size());
}

double NdcgAtK(const std::vector<std::vector<int>>& ranked,
               const std::vector<std::vector<int>>& gold, size_t k) {
  STM_CHECK_EQ(ranked.size(), gold.size());
  STM_CHECK_GT(k, 0u);
  if (ranked.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const std::set<int> g(gold[i].begin(), gold[i].end());
    double dcg = 0.0;
    const size_t top = std::min(k, ranked[i].size());
    for (size_t j = 0; j < top; ++j) {
      if (g.count(ranked[i][j])) dcg += 1.0 / std::log2(j + 2.0);
    }
    double ideal = 0.0;
    const size_t ideal_hits = std::min(k, g.size());
    for (size_t j = 0; j < ideal_hits; ++j) ideal += 1.0 / std::log2(j + 2.0);
    total += ideal > 0.0 ? dcg / ideal : 0.0;
  }
  return total / static_cast<double>(ranked.size());
}

}  // namespace stm::eval
