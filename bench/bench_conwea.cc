// E2 — ConWea results table (ACL'20).
//
// Micro/Macro-F1 on NYT (5-class coarse, 25-class fine) and 20 Newsgroups
// (6-class coarse, 20-class fine) with polysemous seed words. Rows:
// IR-TF-IDF, Dataless, Word2Vec, WeSTClass, ConWea, the three ConWea
// ablations, and the supervised HAN upper bound.
//
// Expected shape (paper): ConWea > every weakly-supervised baseline;
// ablation order ConWea > NoCon ~ NoExpan > WSD; supervised on top.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/conwea.h"
#include "core/westclass.h"
#include "embedding/sgns.h"
#include "eval/metrics.h"

namespace stm {
namespace {

struct View {
  std::string name;
  text::Corpus corpus;
  text::WeakSupervision supervision;
  std::unique_ptr<plm::MiniLm> model;  // shared across views of a dataset
  plm::MiniLm* lm = nullptr;
};

}  // namespace

int Main() {
  // Build both datasets once; coarse/fine views share the vocabulary and
  // the pre-trained LM.
  std::vector<View> views;
  {
    datasets::SyntheticSpec spec = datasets::NytSpec(21);
    spec.num_docs = 600;
    spec.pretrain_docs = 900;
    datasets::SyntheticDataset data = datasets::Generate(spec);
    auto model = bench::PretrainedLm(data);
    plm::MiniLm* lm = model.get();
    datasets::FlatView coarse = datasets::FlattenToDepth(data, 0);
    datasets::FlatView fine = datasets::FlattenToDepth(data, 1);
    views.push_back({"NYT 5-Class (Coarse)", std::move(coarse.corpus),
                     std::move(coarse.supervision), std::move(model), lm});
    views.push_back({"NYT 25-Class (Fine)", std::move(fine.corpus),
                     std::move(fine.supervision), nullptr, lm});
  }
  {
    datasets::SyntheticSpec spec = datasets::TwentyNewsSpec(22);
    spec.num_docs = 600;
    spec.pretrain_docs = 900;
    datasets::SyntheticDataset data = datasets::Generate(spec);
    auto model = bench::PretrainedLm(data);
    plm::MiniLm* lm = model.get();
    datasets::FlatView coarse = datasets::FlattenToDepth(data, 0);
    datasets::FlatView fine = datasets::FlattenToDepth(data, 1);
    views.push_back({"20News 6-Class (Coarse)", std::move(coarse.corpus),
                     std::move(coarse.supervision), std::move(model), lm});
    views.push_back({"20News 20-Class (Fine)", std::move(fine.corpus),
                     std::move(fine.supervision), nullptr, lm});
  }

  std::vector<std::string> columns;
  for (const auto& view : views) {
    columns.push_back(view.name.substr(0, 6) +
                      (view.name.find("Coarse") != std::string::npos
                           ? ":Co"
                           : ":Fi"));
  }
  const std::vector<std::string> rows = {
      "IR-TF-IDF",       "Dataless",         "Word2Vec",
      "WeSTClass",       "ConWea",           "ConWea-NoCon",
      "ConWea-NoExpan",  "ConWea-WSD",       "HAN-Supervised (bound)"};

  for (bool micro : {true, false}) {
    bench::Table table(std::string("E2 ConWea — ") +
                           (micro ? "Micro-F1" : "Macro-F1"),
                       columns);
    std::vector<std::vector<double>> cells(
        rows.size(), std::vector<double>(columns.size(), -1));

    for (size_t v = 0; v < views.size(); ++v) {
      View& view = views[v];
      bench::Progress(view.name);
      const auto gold = view.corpus.GoldLabels();
      const size_t num_classes = view.corpus.num_labels();
      auto score = [&](const std::vector<int>& pred) {
        return micro ? eval::MicroF1(pred, gold, num_classes)
                     : eval::MacroF1(pred, gold, num_classes);
      };

      cells[0][v] = score(core::IrTfIdfClassify(
          view.corpus, view.supervision.class_keywords));

      // Static embeddings for Dataless / Word2Vec rows.
      std::vector<std::vector<int32_t>> tokens;
      for (const auto& doc : view.corpus.docs()) {
        tokens.push_back(doc.tokens);
      }
      embedding::SgnsConfig sgns;
      sgns.epochs = 6;
      sgns.seed = 33;
      const embedding::WordEmbeddings embeddings =
          embedding::WordEmbeddings::Train(tokens,
                                           view.corpus.vocab().size(), sgns);
      // Dataless: names only; Word2Vec: full seed sets.
      std::vector<std::vector<int32_t>> names_only;
      for (const auto& seeds : view.supervision.class_keywords) {
        names_only.push_back({seeds[0]});
      }
      cells[1][v] = score(core::EmbeddingSimilarityClassify(
          view.corpus, embeddings, names_only));
      cells[2][v] = score(core::EmbeddingSimilarityClassify(
          view.corpus, embeddings, view.supervision.class_keywords));

      {
        core::WestClassConfig config;
        config.classifier = "bow";
        config.seed = 44;
        core::WestClass method(view.corpus, config);
        cells[3][v] =
            score(method.Run(core::Supervision::kKeywords,
                             view.supervision));
      }

      auto run_conwea = [&](bool contextualize, bool expand,
                            bool class_aware) {
        core::ConWeaConfig config;
        config.max_occurrences = 25;
        config.enable_contextualization = contextualize;
        config.enable_expansion = expand;
        config.class_aware_senses = class_aware;
        config.seed = 45;
        core::ConWea method(view.corpus, view.lm, config);
        return score(method.Run(view.supervision));
      };
      cells[4][v] = run_conwea(true, true, true);     // full
      cells[5][v] = run_conwea(false, true, true);    // NoCon
      cells[6][v] = run_conwea(true, false, true);    // NoExpan
      cells[7][v] = run_conwea(true, true, false);    // WSD

      {
        // Supervised upper bound on 80% of the corpus.
        std::vector<size_t> train;
        for (size_t d = 0; d < view.corpus.num_docs(); ++d) {
          if (d % 5 != 0) train.push_back(d);
        }
        cells[8][v] = score(core::SupervisedBound(view.corpus, train,
                                                  "han", 12, 46));
      }
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      table.AddRow(rows[r], cells[r]);
    }
    table.Print();
  }
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
