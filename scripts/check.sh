#!/usr/bin/env bash
# Full verification: the tier-1 suite, then the robustness and quantized-
# inference suites rebuilt under AddressSanitizer.
#
# Usage: scripts/check.sh
#   BUILD_DIR       tier-1 build directory      (default: build)
#   ASAN_BUILD_DIR  sanitizer build directory   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
JOBS=$(nproc)

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== gemm + quant + encode suites at STM_ISA=generic and best tier =="
# The kernel tier is a one-time per-process dispatch (la/gemm_kernels.cc),
# so the portable fallback only gets full-stack coverage by re-running the
# kernel-adjacent suites in fresh processes with STM_ISA forced: once at
# generic, once at auto (= the widest tier this machine supports). Keeps
# the scalar tier from rotting on AVX-512 dev boxes, and exercises the
# forced-tier dispatch path itself.
for isa in generic auto; do
  STM_ISA="$isa" ctest --test-dir "$BUILD_DIR" -L 'gemm|quant|encode' \
    --output-on-failure -j "$JOBS"
done

echo "== robustness + quant + encode + gemm + serve + ann + corpus suites under AddressSanitizer =="
# The fault-injection tests push torn, truncated and bit-flipped artifacts
# through every load path — exactly where an out-of-bounds read would hide,
# so they run a second time with ASan watching. The quant suite joins them:
# the int8 pack/micro-kernel code is exactly the kind of byte-offset
# arithmetic ASan is for. The encode suite covers the bucketed batch
# scatter/gather and the cache's disk spill/quarantine paths, both heavy on
# raw buffer offsets. The serve suite adds the dynamic-batching server's
# request plumbing (promise hand-off, queue draining, shutdown orphaning)
# plus the overload-resilience chaos storm (serve_chaos_test.cc): fault-
# injected hooks, deadlines, cancellation and the degradation ladder all
# racing — promise lifetime bugs would surface here first.
# The ann suite covers the retrieval tiers' blocked score panels, packed
# sketch words and STMA payload decoding — more byte-offset arithmetic.
# The corpus suite decodes mmap-backed shard payloads zero-copy (offset
# tables straight out of the mapping) and repairs deliberately damaged
# stores — reads past a torn payload would land exactly here.
# The gemm suite drives every compiled micro-kernel tier's pack/run entry
# points directly (ragged edges of the 8x16 AVX-512 tiles, int8 panel
# repacks), and the encode suite's fused tests walk the tiled-attention
# workspace (strip-sized score buffers, pad-row scatter) — both are where
# an off-by-one would read past a panel. The kernel suites run twice,
# generic and best tier, same rationale as above.
cmake -B "$ASAN_BUILD_DIR" -S . -DSTM_SANITIZE=address
cmake --build "$ASAN_BUILD_DIR" -j "$JOBS" --target stm_robustness_tests \
  --target stm_quant_tests --target stm_encode_tests \
  --target stm_gemm_tests --target stm_serve_tests --target stm_ann_tests \
  --target stm_corpus_tests
ctest --test-dir "$ASAN_BUILD_DIR" -L 'robustness|serve|ann|corpus' \
  --output-on-failure -j "$JOBS"
for isa in generic auto; do
  STM_ISA="$isa" ctest --test-dir "$ASAN_BUILD_DIR" -L 'gemm|quant|encode' \
    --output-on-failure -j "$JOBS"
done

echo "== serve + ann + encode + corpus suites under ThreadSanitizer =="
# The serve workers are dedicated threads submitting into the global pool
# while clients hammer Submit/Shutdown from outside — the exact
# cross-thread hand-off pattern TSan exists to vet. That now includes the
# chaos storm's concurrent cancellations, deadline expiries and ladder
# transitions (tier atomics vs the degrade_mu_/mu_ lock order), and the
# watchdog's heartbeat reads against worker stores. The ann suite
# stresses the parallel heap-select and sketching loops across pool
# resizes. The encode suite joins them for the fused frozen-fp32 path:
# lazy freeze under freeze_mu_ racing concurrent Encode/Pool callers,
# and the fused-vs-autograd equality tests resetting the pool to several
# thread counts mid-suite. The corpus suite adds the sharded reader path:
# parallel per-shard transforms over a shared mapping and the
# last_visit_mapped flag read across visits.
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
cmake -B "$TSAN_BUILD_DIR" -S . -DSTM_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target stm_serve_tests \
  --target stm_ann_tests --target stm_encode_tests \
  --target stm_corpus_tests
ctest --test-dir "$TSAN_BUILD_DIR" -L 'serve|ann|encode|corpus' \
  --output-on-failure -j "$JOBS"

echo "== all checks passed =="
