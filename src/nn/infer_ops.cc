#include "nn/infer_ops.h"

#include <algorithm>
#include <cmath>

namespace stm::nn {

float GeluScalar(float x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

void GeluInplace(float* x, size_t count) {
  for (size_t i = 0; i < count; ++i) x[i] = GeluScalar(x[i]);
}

void ReluInplace(float* x, size_t count) {
  for (size_t i = 0; i < count; ++i) x[i] = std::max(x[i], 0.0f);
}

void AddBiasRows(float* x, size_t rows, size_t d, const float* bias) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = x + r * d;
    for (size_t j = 0; j < d; ++j) row[j] += bias[j];
  }
}

void LayerNormRows(const float* x, size_t rows, size_t d, const float* gamma,
                   const float* beta, float eps, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* o = out + r * d;
    float mu = 0.0f;
    for (size_t j = 0; j < d; ++j) mu += xr[j];
    mu /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      const float diff = xr[j] - mu;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float rs = 1.0f / std::sqrt(var + eps);
    for (size_t j = 0; j < d; ++j) {
      o[j] = (xr[j] - mu) * rs * gamma[j] + beta[j];
    }
  }
}

void SoftmaxRowsInplace(float* x, size_t rows, size_t d) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = x + r * d;
    float max = row[0];
    for (size_t j = 1; j < d; ++j) max = std::max(max, row[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      row[j] = std::exp(row[j] - max);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (size_t j = 0; j < d; ++j) row[j] *= inv;
  }
}

}  // namespace stm::nn
