#include "serve/serve.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/env_parse.h"

namespace stm::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration MillisDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

ServeOptions ServeOptionsFromEnv() {
  ServeOptions options;
  options.max_batch =
      ParseSizeEnv("STM_SERVE_MAX_BATCH", options.max_batch, 1, 4096);
  options.deadline_ms =
      ParseFloatEnv("STM_SERVE_DEADLINE_MS",
                    static_cast<float>(options.deadline_ms), 0.0f, 60000.0f);
  options.queue_depth = ParseSizeEnv("STM_SERVE_QUEUE_DEPTH",
                                     options.queue_depth, 1, size_t{1} << 20);
  options.workers = ParseSizeEnv("STM_SERVE_WORKERS", options.workers, 1, 256);
  return options;
}

Server::Server(plm::MiniLm* model, const ServeOptions& options)
    : model_(model), options_(options) {
  STM_CHECK(model_ != nullptr);
  STM_CHECK_GE(options_.max_batch, 1u);
  STM_CHECK_GE(options_.queue_depth, 1u);
  STM_CHECK_GE(options_.workers, 1u);
  STM_CHECK_GE(options_.deadline_ms, 0.0);
  // Dedicated threads, NOT ThreadPool members: a pool worker calling
  // ThreadPool::Run executes the region inline (nested-submit rejection),
  // which would serialize every encoder GEMM a serve worker issues. As
  // plain threads the workers submit regions to the global pool like any
  // other caller.
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Shutdown(); }

void Server::Register(const std::string& name,
                      std::shared_ptr<const Classifier> classifier) {
  STM_CHECK(classifier != nullptr);
  classifiers_[name] = std::move(classifier);
}

std::future<StatusOr<Prediction>> Server::Submit(const std::string& model,
                                                 std::vector<int32_t> ids) {
  std::promise<StatusOr<Prediction>> rejected;
  std::future<StatusOr<Prediction>> rejected_future = rejected.get_future();

  const auto it = classifiers_.find(model);
  if (it == classifiers_.end()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.invalid;
    }
    rejected.set_value(InvalidArgumentError("unknown model: " + model));
    return rejected_future;
  }
  // Validated here so a hostile request is a Status, not an STM_CHECK
  // abort inside a drain worker's Truncate call.
  const size_t vocab = model_->config().vocab_size;
  for (const int32_t id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= vocab) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.invalid;
      }
      rejected.set_value(InvalidArgumentError(
          "token id " + std::to_string(id) + " outside vocabulary of " +
          std::to_string(vocab)));
      return rejected_future;
    }
  }

  auto request = std::make_unique<Request>();
  request->ids = std::move(ids);
  request->classifier = it->second.get();
  request->enqueued = Clock::now();
  std::future<StatusOr<Prediction>> future = request->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      request->promise.set_value(
          UnavailableError("server is shutting down"));
      return future;
    }
    if (queue_.size() >= options_.queue_depth) {
      // Admission control: shed instead of queueing without bound.
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.shed;
      request->promise.set_value(UnavailableError(
          "queue full (" + std::to_string(options_.queue_depth) +
          " pending requests); retry later"));
      return future;
    }
    queue_.push_back(std::move(request));
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.accepted;
    stats_.max_queue = std::max(stats_.max_queue, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

StatusOr<Prediction> Server::Serve(const std::string& model,
                                   std::vector<int32_t> ids) {
  return Submit(model, std::move(ids)).get();
}

std::vector<std::unique_ptr<Server::Request>> Server::NextBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return {};
      continue;
    }
    // Give the batch until the oldest request's deadline to fill; wake
    // early the moment it is full (or on shutdown).
    const Clock::time_point deadline =
        queue_.front()->enqueued + MillisDuration(options_.deadline_ms);
    queue_cv_.wait_until(lock, deadline, [&] {
      return stopping_ || queue_.size() >= options_.max_batch;
    });
    if (queue_.empty()) continue;  // another worker drained it first
    const size_t take = std::min(options_.max_batch, queue_.size());
    std::vector<std::unique_ptr<Request>> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;
  }
}

void Server::RunBatch(std::vector<std::unique_ptr<Request>> batch) {
  const size_t n = batch.size();
  // One encoder pass per needed representation, over the whole batch:
  // PoolBatch/EncodeBatch plan length buckets internally (PlanBuckets)
  // and run one forward per bucket, so coalescing happens here even when
  // the requests target different registered models.
  std::vector<size_t> pooled_index, hidden_index;
  std::vector<std::vector<int32_t>> pooled_docs, hidden_docs;
  for (size_t i = 0; i < n; ++i) {
    switch (batch[i]->classifier->input()) {
      case Classifier::Input::kTokens:
        break;
      case Classifier::Input::kPooled:
        pooled_index.push_back(i);
        pooled_docs.push_back(batch[i]->ids);
        break;
      case Classifier::Input::kHidden:
        hidden_index.push_back(i);
        hidden_docs.push_back(batch[i]->ids);
        break;
    }
  }

  try {
    la::Matrix pooled;
    if (!pooled_docs.empty()) pooled = model_->PoolBatch(pooled_docs);
    std::vector<la::Matrix> hidden;
    if (!hidden_docs.empty()) hidden = model_->EncodeBatch(hidden_docs);

    std::vector<const float*> pooled_of(n, nullptr);
    std::vector<const la::Matrix*> hidden_of(n, nullptr);
    for (size_t j = 0; j < pooled_index.size(); ++j) {
      pooled_of[pooled_index[j]] = pooled.Row(j);
    }
    for (size_t j = 0; j < hidden_index.size(); ++j) {
      hidden_of[hidden_index[j]] = &hidden[j];
    }

    std::vector<Prediction> predictions;
    predictions.reserve(n);
    std::vector<double> latencies;
    latencies.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Request& request = *batch[i];
      predictions.push_back(request.classifier->Classify(
          request.ids, pooled_of[i], hidden_of[i]));
      latencies.push_back(MillisSince(request.enqueued));
    }
    // Stats are updated BEFORE the promises resolve so a caller that
    // observed its future complete also observes the batch counted.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches;
      stats_.completed += n;
      latencies_ms_.insert(latencies_ms_.end(), latencies.begin(),
                           latencies.end());
    }
    for (size_t i = 0; i < n; ++i) {
      batch[i]->promise.set_value(std::move(predictions[i]));
    }
  } catch (...) {
    // A service never lets a batch failure take the process down (an
    // encode OOM, say): every carried request is failed instead. Any
    // promise already fulfilled above would throw on set_value, so guard
    // each one.
    for (auto& request : batch) {
      try {
        request->promise.set_value(
            UnavailableError("batch execution failed"));
      } catch (const std::future_error&) {
      }
    }
  }
}

void Server::WorkerLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch = NextBatch();
    if (batch.empty()) return;  // shutdown
    RunBatch(std::move(batch));
  }
}

void Server::Shutdown() {
  std::deque<std::unique_ptr<Request>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      orphaned.swap(queue_);
    }
  }
  queue_cv_.notify_all();
  for (auto& request : orphaned) {
    request->promise.set_value(UnavailableError("server shut down"));
  }
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<double> Server::TakeLatenciesMs() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<double> out;
  out.swap(latencies_ms_);
  return out;
}

}  // namespace stm::serve
