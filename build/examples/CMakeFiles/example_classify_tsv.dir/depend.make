# Empty dependencies file for example_classify_tsv.
# This may be replaced when dependencies are built.
