#!/usr/bin/env bash
# Full verification: the tier-1 suite, then the robustness and quantized-
# inference suites rebuilt under AddressSanitizer.
#
# Usage: scripts/check.sh
#   BUILD_DIR       tier-1 build directory      (default: build)
#   ASAN_BUILD_DIR  sanitizer build directory   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
JOBS=$(nproc)

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== robustness + quant + encode + serve + ann suites under AddressSanitizer =="
# The fault-injection tests push torn, truncated and bit-flipped artifacts
# through every load path — exactly where an out-of-bounds read would hide,
# so they run a second time with ASan watching. The quant suite joins them:
# the int8 pack/micro-kernel code is exactly the kind of byte-offset
# arithmetic ASan is for. The encode suite covers the bucketed batch
# scatter/gather and the cache's disk spill/quarantine paths, both heavy on
# raw buffer offsets. The serve suite adds the dynamic-batching server's
# request plumbing (promise hand-off, queue draining, shutdown orphaning)
# plus the overload-resilience chaos storm (serve_chaos_test.cc): fault-
# injected hooks, deadlines, cancellation and the degradation ladder all
# racing — promise lifetime bugs would surface here first.
# The ann suite covers the retrieval tiers' blocked score panels, packed
# sketch words and STMA payload decoding — more byte-offset arithmetic.
cmake -B "$ASAN_BUILD_DIR" -S . -DSTM_SANITIZE=address
cmake --build "$ASAN_BUILD_DIR" -j "$JOBS" --target stm_robustness_tests \
  --target stm_quant_tests --target stm_encode_tests \
  --target stm_serve_tests --target stm_ann_tests
ctest --test-dir "$ASAN_BUILD_DIR" -L 'robustness|quant|encode|serve|ann' \
  --output-on-failure -j "$JOBS"

echo "== serve + ann suites under ThreadSanitizer =="
# The serve workers are dedicated threads submitting into the global pool
# while clients hammer Submit/Shutdown from outside — the exact
# cross-thread hand-off pattern TSan exists to vet. That now includes the
# chaos storm's concurrent cancellations, deadline expiries and ladder
# transitions (tier atomics vs the degrade_mu_/mu_ lock order), and the
# watchdog's heartbeat reads against worker stores. The ann suite
# stresses the parallel heap-select and sketching loops across pool
# resizes.
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
cmake -B "$TSAN_BUILD_DIR" -S . -DSTM_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target stm_serve_tests \
  --target stm_ann_tests
ctest --test-dir "$TSAN_BUILD_DIR" -L 'serve|ann' --output-on-failure \
  -j "$JOBS"

echo "== all checks passed =="
